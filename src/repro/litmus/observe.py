"""Running the real engines on a litmus test.

:func:`observe_litmus` is the suite's third leg: it lowers the litmus
spec to IR and runs the actual implementations — the static checker, the
dynamic happens-before checker, and VM execution under the trace
recorder followed by crash-image enumeration — then projects the
enumerated images back onto the litmus's observed fields so all three
legs speak the same outcome language.

Projection relies on two lowering invariants: ``palloc`` events appear
in allocation order (root first, then payload object 0, 1, ...), and
every payload field starts at ``field * CACHELINE`` inside its object.
Images from crash points before all allocations exist are skipped — the
litmus observes a world where its objects exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..checker.engine import StaticChecker
from ..crashsim.enumerate import Enumeration, enumerate_crash_images
from ..crashsim.trace import PersistTrace, record_trace
from ..dynamic.checker import DynamicChecker
from ..faults.injector import FaultInjector
from ..nvm.cacheline import CACHELINE
from .catalog import LitmusTest
from .expect import Outcome
from .spec import litmus_spec


@dataclass(frozen=True)
class Observation:
    """What the real engines reported for one (test, model) case."""

    static_rules: FrozenSet[str]
    dynamic_rules: FrozenSet[str]
    crashsim_outcomes: FrozenSet[Outcome]
    states: int
    crash_points: int
    truncated: bool


def project_outcomes(enum: Enumeration, trace: PersistTrace,
                     test: LitmusTest) -> FrozenSet[Outcome]:
    """Project enumerated crash images onto the test's observed fields."""
    palloc_order: List[int] = []
    for ev in trace.events:
        if ev.kind == "palloc" and ev.alloc not in palloc_order:
            palloc_order.append(ev.alloc)
    # allocation order: root object first, then payload objects by index
    payload_allocs = palloc_order[1:]
    observed = test.observed_fields()
    outcomes = set()
    for img in enum.images:
        values: List[int] = []
        for obj, fld in observed:
            if obj >= len(payload_allocs):
                break
            buf = img.image.get(payload_allocs[obj])
            if buf is None:
                break
            off = fld * CACHELINE
            values.append(int.from_bytes(buf[off:off + 8], "little",
                                         signed=True))
        else:
            outcomes.add(tuple(values))
    return frozenset(outcomes)


def observe_litmus(test: LitmusTest, model: str,
                   max_states: int = 4096,
                   telemetry=None,
                   prune: bool = True) -> Observation:
    """Run all three real engines on ``test`` under ``model``."""
    spec = litmus_spec(test, model)
    static_report = StaticChecker(spec.to_module(), model=model,
                                  telemetry=telemetry).run()
    static_rules = frozenset(w.rule_id for w in static_report.warnings())
    dyn_report, _runs = DynamicChecker(spec.to_module(), model,
                                       telemetry=telemetry).run()
    dynamic_rules = frozenset(w.rule_id for w in dyn_report.warnings())
    injector: Optional[FaultInjector] = None
    if test.fault is not None:
        injector = FaultInjector(nvm_directive=test.fault)
    trace = record_trace(spec.to_module(), entry="main",
                         telemetry=telemetry, fault_injector=injector)
    enum = enumerate_crash_images(trace, model, max_states=max_states,
                                  prune=prune)
    return Observation(
        static_rules=static_rules,
        dynamic_rules=dynamic_rules,
        crashsim_outcomes=project_outcomes(enum, trace, test),
        states=enum.states,
        crash_points=enum.crash_points,
        truncated=enum.truncated,
    )
