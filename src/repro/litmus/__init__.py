"""Persistency-model litmus suite: executable model documentation.

A catalog of small canonical persist-ordering patterns
(:mod:`~repro.litmus.catalog`), each declaring its admissible crash
outcomes and checker verdicts per model; a cross-validating runner
(:mod:`~repro.litmus.runner`) that checks the declarations against
crashsim enumeration, the spec-level simulators, and the real checkers;
and a doc generator (:mod:`~repro.litmus.docgen`) that renders the
catalog into ``docs/MODELS.md``. Surfaced as ``deepmc litmus``.
"""

from .catalog import CATALOG, GROUPS, MODELS, Expected, LitmusTest, cases, \
    get_test, validate_catalog
from .expect import simulate_outcomes
from .observe import Observation, observe_litmus
from .runner import render_litmus, run_case, run_litmus
from .spec import LitmusSpec, litmus_spec

__all__ = [
    "CATALOG", "GROUPS", "MODELS", "Expected", "LitmusTest",
    "LitmusSpec", "Observation", "cases", "get_test", "litmus_spec",
    "observe_litmus", "render_litmus", "run_case", "run_litmus",
    "simulate_outcomes", "validate_catalog",
]
