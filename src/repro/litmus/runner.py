"""Cross-validating the litmus catalog three ways.

For every (test, model) case the runner compares three independent
answers to "what can this pattern leave in NVM, and what should the
checkers say":

* **declared** — the hand-reasoned :class:`~repro.litmus.catalog.
  Expected` in the catalog;
* **crashsim** — crash-image enumeration over the recorded persist trace
  of the lowered IR, projected onto the litmus's fields;
* **simulated** — the spec-level simulators (:func:`~repro.litmus.
  expect.simulate_outcomes` for outcomes, the fuzzer's
  ``expected_static_rules``/``expected_dynamic_rules`` for verdicts);

plus the real checkers' verdicts on the same lowering. Every *pairwise*
mismatch is reported as a disagreement naming the two legs and the
channel (``outcomes``, ``static``, ``dynamic``), so a semantics
regression shows up as "crashsim-vs-simulated" even when both drifted
away from a stale declaration in the same direction.

The fan-out mirrors crashsim's: a module-level picklable task, results
in submission order, ``jobs <= 1`` running in-process, worker telemetry
merged back — so ``--jobs N`` output is byte-identical to serial.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..fuzz.expect import expected_dynamic_rules, expected_static_rules
from ..telemetry import Span, Telemetry
from ..vm.engine import resolve_engine, use_engine
from .catalog import CATALOG, LitmusTest, cases, get_test
from .expect import simulate_outcomes
from .observe import observe_litmus
from .spec import litmus_spec

#: enumeration default, shared by the CLI flag
DEFAULT_MAX_STATES = 4096

#: comparison channels and the legs compared on each
CHANNELS = ("outcomes", "static", "dynamic")


def _sorted_outcomes(outcomes: Iterable[Tuple[int, ...]]) -> List[List[int]]:
    return [list(o) for o in sorted(outcomes)]


def _pairwise(channel: str, legs: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Disagreements between every pair of legs on one channel."""
    out: List[Dict[str, Any]] = []
    names = list(legs)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if legs[a] != legs[b]:
                out.append({
                    "channel": channel,
                    "legs": f"{a}-vs-{b}",
                    a: legs[a],
                    b: legs[b],
                })
    return out


def run_case(test: LitmusTest, model: str,
             max_states: int = DEFAULT_MAX_STATES,
             telemetry: Optional[Telemetry] = None) -> Dict[str, Any]:
    """Run one (test, model) case; returns a JSON-able result payload."""
    expected = test.expected[model]
    spec = litmus_spec(test, model)
    obs = observe_litmus(test, model, max_states=max_states,
                         telemetry=telemetry)
    sim_outcomes = simulate_outcomes(test, model)
    sim_static = frozenset(expected_static_rules(spec))
    sim_dynamic = frozenset(expected_dynamic_rules(spec))

    disagreements: List[Dict[str, Any]] = []
    disagreements += _pairwise("outcomes", {
        "declared": _sorted_outcomes(expected.outcomes),
        "crashsim": _sorted_outcomes(obs.crashsim_outcomes),
        "simulated": _sorted_outcomes(sim_outcomes),
    })
    disagreements += _pairwise("static", {
        "declared": sorted(expected.static_rules),
        "checker": sorted(obs.static_rules),
        "simulated": sorted(sim_static),
    })
    disagreements += _pairwise("dynamic", {
        "declared": sorted(expected.dynamic_rules),
        "checker": sorted(obs.dynamic_rules),
        "simulated": sorted(sim_dynamic),
    })
    return {
        "test": test.name,
        "model": model,
        "group": test.group,
        "fields": [f"obj{o}.f{f}" for o, f in test.observed_fields()],
        "outcomes": _sorted_outcomes(expected.outcomes),
        "static_rules": sorted(expected.static_rules),
        "dynamic_rules": sorted(expected.dynamic_rules),
        "states": obs.states,
        "crash_points": obs.crash_points,
        "truncated": obs.truncated,
        "disagreements": disagreements,
        "agree": not disagreements,
    }


# -- parallel fan-out -------------------------------------------------------

def _litmus_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: one (test, model) case by name.

    Module-level (picklable) and self-contained; ships spans/metrics
    back for the parent to merge, like the crashsim/corpus workers.
    """
    name = task["name"]
    try:
        tel = Telemetry() if task.get("telemetry") else None
        with use_engine(task.get("engine")):
            result = run_case(get_test(task["test"]), task["model"],
                              max_states=task.get("max_states",
                                                  DEFAULT_MAX_STATES),
                              telemetry=tel)
        return {
            "name": name,
            "ok": True,
            "result": result,
            "span": (tel.tracer.roots[-1].to_dict()
                     if tel is not None and tel.tracer.roots else None),
            "metrics": tel.metrics.dump() if tel is not None else None,
        }
    except Exception:
        return {"name": name, "ok": False, "error": traceback.format_exc()}


def run_litmus(tests: Optional[List[LitmusTest]] = None,
               models: Optional[List[str]] = None,
               jobs: int = 1,
               max_states: int = DEFAULT_MAX_STATES,
               telemetry: Optional[Telemetry] = None,
               engine: Optional[str] = None) -> Dict[str, Any]:
    """Run the (filtered) catalog and aggregate a report payload."""
    selected = cases(tests if tests is not None else CATALOG, models)
    results: List[Dict[str, Any]] = []
    errors: List[Dict[str, str]] = []

    if jobs <= 1:
        with use_engine(engine):
            for test, model in selected:
                try:
                    results.append(run_case(test, model,
                                            max_states=max_states,
                                            telemetry=telemetry))
                except Exception:
                    errors.append({"case": f"{test.name}:{model}",
                                   "error": traceback.format_exc()})
    else:
        from ..parallel.executor import run_tasks

        # resolve in the parent so workers run the engine the caller saw
        resolved = resolve_engine(engine)
        tasks = [
            {
                "name": f"{test.name}:{model}",
                "test": test.name,
                "model": model,
                "max_states": max_states,
                "telemetry": telemetry is not None and telemetry.enabled,
                "engine": resolved,
            }
            for test, model in selected
        ]
        payloads = run_tasks(_litmus_task, tasks, jobs=jobs,
                             telemetry=telemetry)
        for payload in payloads:
            if payload.get("ok"):
                results.append(payload["result"])
            else:
                errors.append({"case": payload.get("name", "?"),
                               "error": payload.get("error", "")})
            if telemetry is not None:
                if payload.get("span"):
                    telemetry.tracer.adopt(Span.from_dict(payload["span"]))
                if payload.get("metrics"):
                    telemetry.metrics.merge(payload["metrics"])

    disagreeing = [r for r in results if not r["agree"]]
    if telemetry is not None:
        telemetry.metrics.counter("litmus.cases").inc(len(results))
        telemetry.metrics.counter("litmus.disagreements").inc(
            sum(len(r["disagreements"]) for r in results))
    return {
        "schema": "deepmc.litmus/v1",
        "cases": results,
        "errors": errors,
        "summary": {
            "cases": len(results),
            "agreeing": len(results) - len(disagreeing),
            "disagreeing": len(disagreeing),
            "errors": len(errors),
        },
    }


# -- rendering --------------------------------------------------------------

def render_litmus(payload: Dict[str, Any]) -> str:
    """Human-readable report (deterministic)."""
    lines: List[str] = []
    group = None
    for case in payload["cases"]:
        if case["group"] != group:
            group = case["group"]
            lines.append(f"== {group} ==")
        status = "ok" if case["agree"] else "DISAGREE"
        lines.append(
            f"  {case['test']:<28} {case['model']:<7} "
            f"{len(case['outcomes']):>2} outcomes  "
            f"{case['states']:>3} images  {status}")
        for d in case["disagreements"]:
            lines.append(f"      {d['channel']}: {d['legs']}")
            for leg in d:
                if leg in ("channel", "legs"):
                    continue
                lines.append(f"        {leg}: {d[leg]}")
    for err in payload["errors"]:
        lines.append(f"  ERROR {err['case']}")
        lines.append("    " + err["error"].strip().replace("\n", "\n    "))
    s = payload["summary"]
    lines.append(
        f"{s['cases']} cases: {s['agreeing']} agree, "
        f"{s['disagreeing']} disagree, {s['errors']} errors")
    return "\n".join(lines)
