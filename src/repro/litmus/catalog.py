"""The litmus catalog: canonical persist-ordering patterns + expectations.

Each :class:`LitmusTest` is a tiny straight-line persist pattern (a few
stores/flushes/fences, possibly epoch/strand regions or a durable tx)
plus, for every persistency model it runs under, a hand-reasoned
:class:`Expected`:

* ``outcomes`` — the *expected outcome set*: every admissible valuation
  of the pattern's stored fields that a crash at any point could leave
  in NVM under that model. This is the litmus literature's "allowed
  final states", adapted to whole-execution crash enumeration.
* ``static_rules`` / ``dynamic_rules`` — the Table 4/5 rule ids the
  static checker and the happens-before runtime should report.

The declarations here are ground truth written from the model
definitions (docs/MODELS.md renders the reasoning); the runner then
checks them against two executable semantics — crashsim replay of the
recorded persist trace and the spec-level simulators — so a typo here,
or a semantics bug in either engine, surfaces as a pairwise
disagreement rather than silently shifting what the models "mean".

Values are chosen so every distinct durable state is distinguishable:
zero-initialised NVM means 0 always denotes "never persisted", and the
torn-write test stores ``2**32 + 1`` so a 4-byte torn line yields the
visibly-partial value 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..fuzz.spec import OP_KINDS, Op

MODELS: Tuple[str, ...] = ("strict", "epoch", "strand")

#: value stored by the torn-write litmus: low 4 bytes are 1, high are 1,
#: so persisting only the first 4 line bytes leaves the field reading 1
TORN_VALUE = 2 ** 32 + 1


@dataclass(frozen=True)
class Expected:
    """Per-model ground truth for one litmus test."""

    #: admissible persistent valuations of the observed fields (sorted
    #: (obj, field) order), unioned over every crash point
    outcomes: FrozenSet[Tuple[int, ...]]
    #: rule ids the static checker should report
    static_rules: FrozenSet[str] = frozenset()
    #: rule ids the dynamic happens-before checker should report
    dynamic_rules: FrozenSet[str] = frozenset()


def _ex(outcomes: Iterable[Tuple[int, ...]],
        static: Iterable[str] = (),
        dynamic: Iterable[str] = ()) -> Expected:
    return Expected(outcomes=frozenset(tuple(o) for o in outcomes),
                    static_rules=frozenset(static),
                    dynamic_rules=frozenset(dynamic))


@dataclass(frozen=True)
class LitmusTest:
    """One catalog entry. ``expected`` has exactly the keys ``models``."""

    name: str
    group: str
    title: str
    #: plain-prose rationale rendered into docs/MODELS.md
    prose: str
    ops: Tuple[Op, ...]
    models: Tuple[str, ...]
    expected: Dict[str, Expected]
    #: optional one-shot NVM fault directive (FaultInjector.nvm_directive)
    fault: Optional[Dict] = None
    loop_count: int = 0
    helper_depth: int = 0

    @property
    def field_counts(self) -> Tuple[int, ...]:
        """Payload fields per object, derived from the op stream."""
        needed: Dict[int, int] = {}
        for op in self.ops:
            if op[0] in ("store", "flush"):
                obj, fld = op[1], op[2]
                needed[obj] = max(needed.get(obj, 1), fld + 1)
            elif op[0] == "tx_add":
                needed.setdefault(op[1], 1)
        if not needed:
            return ()
        return tuple(needed.get(i, 1) for i in range(max(needed) + 1))

    def observed_fields(self) -> List[Tuple[int, int]]:
        """The stored (obj, field) keys, sorted — outcome tuple order."""
        return sorted({(op[1], op[2]) for op in self.ops
                       if op[0] == "store"})


def _t(name: str, group: str, title: str, prose: str,
       ops: Iterable[Op], models: Iterable[str],
       expected: Dict[str, Expected], **kw) -> LitmusTest:
    return LitmusTest(name=name, group=group, title=title,
                      prose=" ".join(prose.split()),
                      ops=tuple(tuple(op) for op in ops),
                      models=tuple(models), expected=expected, **kw)


# -- op shorthands ----------------------------------------------------------

def _st(obj: int, fld: int, val: int) -> Op:
    return ("store", obj, fld, val)


def _fl(obj: int, fld: int) -> Op:
    return ("flush", obj, fld)


_FE: Op = ("fence",)
_EB: Op = ("epoch_begin",)
_EE: Op = ("epoch_end",)
_SB: Op = ("strand_begin",)
_SE: Op = ("strand_end",)
_TB: Op = ("tx_begin",)
_TE: Op = ("tx_end",)


def _ta(obj: int) -> Op:
    return ("tx_add", obj)


# ---------------------------------------------------------------------------
# ordering: bare store/flush/fence patterns, contrasted across all models
# ---------------------------------------------------------------------------

_ORDERING = (
    _t("store-only", "ordering", "A bare store never fences",
       """The minimal pattern: one store, no flush, no fence. Under strict
       persistency an unflushed store can never reach NVM through the
       modelled pipeline, so the only admissible image is the initial
       zero. Under epoch and strand persistency the cache may write the
       dirty line back spontaneously at any point before the next fence,
       so both 0 and 5 are admissible. Every model's checker flags the
       write as unflushable at exit.""",
       [_st(0, 0, 5)],
       MODELS,
       {"strict": _ex({(0,)}, static=["strict.unflushed-write"]),
        "epoch": _ex({(0,), (5,)}, static=["epoch.unflushed-write"]),
        "strand": _ex({(0,), (5,)}, static=["epoch.unflushed-write"])}),

    _t("store-flush", "ordering", "Flush without fence is a request",
       """A flush only queues the write-back; until a fence drains the
       queue the crash may land on either side, so 0 and 5 are both
       admissible under every model. Strict mode additionally reports
       the unbarriered trailing flush — the program ended without the
       fence that would make the flush meaningful.""",
       [_st(0, 0, 5), _fl(0, 0)],
       MODELS,
       {"strict": _ex({(0,), (5,)}, static=["strict.missing-barrier"]),
        "epoch": _ex({(0,), (5,)}),
        "strand": _ex({(0,), (5,)})}),

    _t("store-flush-fence", "ordering", "The complete persist",
       """Store, flush, fence: the canonical durable write. The crash can
       still land before the fence (value 0) or after it (value 5), but
       after the fence returns, 5 is guaranteed. Clean under every
       model.""",
       [_st(0, 0, 5), _fl(0, 0), _FE],
       MODELS,
       {"strict": _ex({(0,), (5,)}),
        "epoch": _ex({(0,), (5,)}),
        "strand": _ex({(0,), (5,)})}),

    _t("store-fence", "ordering", "A fence without a flush drains nothing",
       """The fence drains the *flush queue*, and nothing was flushed.
       Under strict persistency the store therefore never persists.
       Under epoch/strand persistency the line is write-back candidate
       while dirty in the current epoch — so 5 can persist *before* the
       fence — but the fence closes the epoch without draining it, after
       which the stale line can no longer be exposed by this trace.""",
       [_st(0, 0, 5), _FE],
       MODELS,
       {"strict": _ex({(0,)}, static=["strict.unflushed-write"]),
        "epoch": _ex({(0,), (5,)}, static=["epoch.unflushed-write"]),
        "strand": _ex({(0,), (5,)}, static=["epoch.unflushed-write"])}),

    _t("message-passing", "ordering", "Fenced message passing",
       """The MP litmus: persist x, fence, persist y. The fence orders
       the two persists, so the recovery-breaking image (y set while x
       is not) is inadmissible under every model — the outcome (0, 2)
       never appears. This is the pattern every ordered-update protocol
       reduces to.""",
       [_st(0, 0, 1), _fl(0, 0), _FE, _st(1, 0, 2), _fl(1, 0), _FE],
       MODELS,
       {"strict": _ex({(0, 0), (1, 0), (1, 2)}),
        "epoch": _ex({(0, 0), (1, 0), (1, 2)}),
        "strand": _ex({(0, 0), (1, 0), (1, 2)})}),

    _t("message-passing-unfenced", "ordering",
       "Without the fence, persists reorder",
       """Drop MP's intermediate fence and both lines sit in the flush
       queue together: the device may write them back in either order,
       so all four images — including the broken (0, 2) — are
       admissible under every model. Strict mode reports both the
       flush-then-store without a barrier and the two writes racing to
       one barrier; epoch mode reports the latter; strand mode, which
       only orders within a strand, is silent.""",
       [_st(0, 0, 1), _fl(0, 0), _st(1, 0, 2), _fl(1, 0), _FE],
       MODELS,
       {"strict": _ex({(0, 0), (0, 2), (1, 0), (1, 2)},
                      static=["strict.missing-barrier",
                              "strict.multi-write-barrier"]),
        "epoch": _ex({(0, 0), (0, 2), (1, 0), (1, 2)},
                     static=["strict.multi-write-barrier"]),
        "strand": _ex({(0, 0), (0, 2), (1, 0), (1, 2)})}),

    _t("overwrite-fenced", "ordering", "Fenced overwrite is monotone",
       """Persist 1, fence, persist 2 to the same field. The field moves
       through 0 → 1 → 2 and a crash can expose any of the three — but
       never a mix, and never 2-then-1. Clean under every model.""",
       [_st(0, 0, 1), _fl(0, 0), _FE, _st(0, 0, 2), _fl(0, 0), _FE],
       MODELS,
       {"strict": _ex({(0,), (1,), (2,)}),
        "epoch": _ex({(0,), (1,), (2,)}),
        "strand": _ex({(0,), (1,), (2,)})}),

    _t("overwrite-unfenced", "ordering",
       "Unfenced overwrite can still expose the old value",
       """Store 1, flush, store 2, flush, fence. The queued write-back
       carries whatever the line holds when it drains, so the crash can
       expose 0, the transient 1, or the final 2. The same three
       outcomes as the fenced variant — on one field, reordering has
       nothing distinct to expose — but strict mode flags the
       store-after-unbarriered-flush idiom anyway, because on *shared*
       state that idiom is exactly how stale values escape.""",
       [_st(0, 0, 1), _fl(0, 0), _st(0, 0, 2), _fl(0, 0), _FE],
       MODELS,
       {"strict": _ex({(0,), (1,), (2,)},
                      static=["strict.missing-barrier"]),
        "epoch": _ex({(0,), (1,), (2,)}),
        "strand": _ex({(0,), (1,), (2,)})}),

    _t("two-fields-one-fence", "ordering",
       "Two fields under one fence tear",
       """Initialise two fields of one object and fence once. Until the
       fence both lines are in flight independently, so the crash can
       expose any subset — the classic torn struct. Strict and epoch
       mode report two writes sharing one barrier (epoch mode, because
       these writes are not inside any epoch); under strand persistency
       unordered co-location is the default and nothing fires.""",
       [_st(0, 0, 7), _st(0, 1, 8), _fl(0, 0), _fl(0, 1), _FE],
       MODELS,
       {"strict": _ex({(0, 0), (0, 8), (7, 0), (7, 8)},
                      static=["strict.multi-write-barrier"]),
        "epoch": _ex({(0, 0), (0, 8), (7, 0), (7, 8)},
                     static=["strict.multi-write-barrier"]),
        "strand": _ex({(0, 0), (0, 8), (7, 0), (7, 8)})}),

    _t("unflushed-reorder", "ordering",
       "Epoch eviction reorders around an explicit persist",
       """Store x without flushing it, then fully persist y. Under
       strict persistency x simply never becomes durable: two outcomes.
       Under epoch and strand persistency the dirty x line may be
       spontaneously evicted *before* y's explicit persist — (1, 0) is
       admissible — which is why "I only care about y" still obligates
       flushing x before relying on cross-field invariants.""",
       [_st(0, 0, 1), _st(1, 0, 2), _fl(1, 0), _FE],
       MODELS,
       {"strict": _ex({(0, 0), (0, 2)},
                      static=["strict.unflushed-write"]),
        "epoch": _ex({(0, 0), (0, 2), (1, 0), (1, 2)},
                     static=["epoch.unflushed-write"]),
        "strand": _ex({(0, 0), (0, 2), (1, 0), (1, 2)},
                      static=["epoch.unflushed-write"])}),
)

# ---------------------------------------------------------------------------
# epoch: ordering at epoch granularity (epoch model only)
# ---------------------------------------------------------------------------

_EPOCH = (
    _t("epoch-clean", "epoch", "A fenced epoch",
       """The well-formed epoch idiom: begin, mutate, flush, end, fence.
       The fence after the epoch boundary is what gives the *next*
       epoch its ordering guarantee.""",
       [_EB, _st(0, 0, 5), _fl(0, 0), _EE, _FE],
       ("epoch",),
       {"epoch": _ex({(0,), (5,)})}),

    _t("epoch-missing-barrier", "epoch",
       "Back-to-back epochs without a fence collapse into one",
       """Two epochs with no fence between them: both lines are still
       queued when the crash hits, so the second epoch's write can
       persist before the first's — all four images are admissible,
       exactly as if there were no epoch boundary at all. The checker
       reports the missing inter-epoch barrier.""",
       [_EB, _st(0, 0, 1), _fl(0, 0), _EE,
        _EB, _st(1, 0, 2), _fl(1, 0), _EE, _FE],
       ("epoch",),
       {"epoch": _ex({(0, 0), (0, 2), (1, 0), (1, 2)},
                     static=["epoch.missing-barrier"])}),

    _t("epoch-barriered", "epoch", "A fence between epochs orders them",
       """The fixed variant of epoch-missing-barrier: fencing between
       the epochs forbids the reordered image (0, 2), leaving the same
       monotone outcome chain as fenced message passing.""",
       [_EB, _st(0, 0, 1), _fl(0, 0), _EE, _FE,
        _EB, _st(1, 0, 2), _fl(1, 0), _EE, _FE],
       ("epoch",),
       {"epoch": _ex({(0, 0), (1, 0), (1, 2)})}),

    _t("epoch-nested-missing-barrier", "epoch",
       "An inner epoch needs its own barrier",
       """A nested epoch ends, its writes still in flight, and the outer
       epoch keeps mutating: inner and outer writes reorder freely (all
       four images). The checker distinguishes this from the top-level
       case and reports the nested missing barrier.""",
       [_EB, _EB, _st(0, 0, 5), _fl(0, 0), _EE,
        _st(1, 0, 2), _fl(1, 0), _EE, _FE],
       ("epoch",),
       {"epoch": _ex({(0, 0), (0, 2), (5, 0), (5, 2)},
                     static=["epoch.nested-missing-barrier"])}),

    _t("epoch-split-object", "epoch",
       "Splitting one object across epochs is suspicious",
       """Two properly fenced epochs update disjoint fields of the same
       object. The *ordering* is fine — the outcome set is the monotone
       chain — but updating one logical object across two failure-atomic
       units usually means a half-updated object is considered
       recoverable; the checker flags the semantic mismatch between the
       epoch boundaries and the object boundary.""",
       [_EB, _st(0, 0, 1), _fl(0, 0), _EE, _FE,
        _EB, _st(0, 1, 2), _fl(0, 1), _EE, _FE],
       ("epoch",),
       {"epoch": _ex({(0, 0), (1, 0), (1, 2)},
                     static=["epoch.semantic-mismatch"])}),

    _t("epoch-multi-field", "epoch",
       "Inside one epoch, co-located writes are the point",
       """Both fields of one object updated inside a single epoch and
       fenced once. The images can tear (any subset of the two lines)
       — that is what an epoch *means*: atomicity is the epoch, not the
       store. Unlike the bare two-fields-one-fence pattern, no
       multi-write warning fires, because the epoch declares the
       grouping intentional.""",
       [_EB, _st(0, 0, 1), _fl(0, 0), _st(0, 1, 2), _fl(0, 1), _EE, _FE],
       ("epoch",),
       {"epoch": _ex({(0, 0), (0, 2), (1, 0), (1, 2)})}),

    _t("epoch-trailing", "epoch", "A final epoch may end the program",
       """An epoch that ends the program without a trailing fence is not
       a missing-barrier violation — the rule orders an epoch against
       the *next* one, and there is none. The queued line may or may not
       have drained at the crash, hence both outcomes.""",
       [_EB, _st(0, 0, 5), _fl(0, 0), _EE],
       ("epoch",),
       {"epoch": _ex({(0,), (5,)})}),
)

# ---------------------------------------------------------------------------
# strand: intra-strand order only (strand model only)
# ---------------------------------------------------------------------------

_STRAND = (
    _t("strand-independent", "strand",
       "Strands over disjoint data are free",
       """Two strands persist different objects. Strand persistency
       orders persists only within a strand, so the two updates reorder
       freely (all four images) — and that is the model working as
       intended, not a bug: nothing fires.""",
       [_SB, _st(0, 0, 1), _fl(0, 0), _SE,
        _SB, _st(1, 0, 2), _fl(1, 0), _SE, _FE],
       ("strand",),
       {"strand": _ex({(0, 0), (0, 2), (1, 0), (1, 2)})}),

    _t("strand-dependence", "strand",
       "Strands touching the same word race",
       """Two strands write the same field with no fence between them.
       Inter-strand persists are unordered, so which value survives is a
       race; both the static checker (consecutive strands with
       overlapping writes) and the happens-before runtime (same word,
       different strands, same fence epoch) report the dependence.""",
       [_SB, _st(0, 0, 1), _fl(0, 0), _SE,
        _SB, _st(0, 0, 2), _fl(0, 0), _SE, _FE],
       ("strand",),
       {"strand": _ex({(0,), (1,), (2,)},
                      static=["strand.dependence"],
                      dynamic=["strand.dependence"])}),

    _t("strand-fenced", "strand", "A fence between strands orders them",
       """The fixed variant of strand-dependence: a fence between the
       strands serialises the conflicting persists, and both checkers
       go quiet. The outcome set is the monotone overwrite chain.""",
       [_SB, _st(0, 0, 1), _fl(0, 0), _SE, _FE,
        _SB, _st(0, 0, 2), _fl(0, 0), _SE, _FE],
       ("strand",),
       {"strand": _ex({(0,), (1,), (2,)})}),

    _t("strand-disjoint-fields", "strand",
       "Strand independence is field-granular",
       """Two strands write *different fields* of the same object. The
       write sets do not overlap, so no dependence exists — object-level
       aliasing is not enough — and the persists reorder freely, like
       the independent-objects case.""",
       [_SB, _st(0, 0, 1), _fl(0, 0), _SE,
        _SB, _st(0, 1, 2), _fl(0, 1), _SE, _FE],
       ("strand",),
       {"strand": _ex({(0, 0), (0, 2), (1, 0), (1, 2)})}),
)

# ---------------------------------------------------------------------------
# tx: durable-transaction commit windows (strict + epoch)
# ---------------------------------------------------------------------------

_TX = (
    _t("tx-commit-window", "tx", "The commit window is visible",
       """A logged transaction updates two fields; commit flushes the
       log's ranges and fences. A crash *inside* the commit window —
       after the commit flushes queue the lines, before the commit fence
       retires — can expose any subset of the two lines, so all four
       images are admissible even though the program has no explicit
       flush at all. (Recovery would roll the partial images back via
       the undo log; the outcome set documents the raw window.) Under
       epoch persistency the same four images are reachable even
       earlier, via in-epoch eviction.""",
       [_TB, _ta(0), _st(0, 0, 7), _st(0, 1, 8), _TE],
       ("strict", "epoch"),
       {"strict": _ex({(0, 0), (0, 8), (7, 0), (7, 8)}),
        "epoch": _ex({(0, 0), (0, 8), (7, 0), (7, 8)})}),

    _t("tx-unlogged-write", "tx", "Unlogged writes do not commit",
       """The transaction logs obj0 but also writes obj1. Commit only
       flushes logged ranges, so under strict persistency the unlogged
       write can never persist — and the checker reports it at the
       transaction end. Under epoch persistency eviction can leak the
       unlogged value out anyway (all four images), which is exactly
       why the leak is a *model-dependent* bug.""",
       [_TB, _ta(0), _st(0, 0, 7), _st(1, 0, 9), _TE],
       ("strict", "epoch"),
       {"strict": _ex({(0, 0), (7, 0)},
                      static=["strict.unflushed-write"]),
        "epoch": _ex({(0, 0), (0, 9), (7, 0), (7, 9)},
                     static=["epoch.unflushed-write"])}),

    _t("tx-empty", "tx", "An empty durable transaction",
       """A begin/end pair with no logged write pays two region
       crossings and commits nothing — the performance checker flags
       it. The unrelated persist that follows behaves normally.""",
       [_TB, _TE, _st(0, 0, 5), _fl(0, 0), _FE],
       ("strict", "epoch"),
       {"strict": _ex({(0,), (5,)}, static=["perf.empty-durable-tx"]),
        "epoch": _ex({(0,), (5,)}, static=["perf.empty-durable-tx"])}),

    _t("tx-double-log", "tx", "Logging a range twice doubles the commit",
       """The same object is undo-logged twice, so commit snapshots and
       flushes it twice — correct, but the duplicated persist work is
       flagged. The outcome set is the plain committed/uncommitted
       pair.""",
       [_TB, _ta(0), _ta(0), _st(0, 0, 7), _TE],
       ("strict", "epoch"),
       {"strict": _ex({(0,), (7,)}, static=["perf.multi-persist-tx"]),
        "epoch": _ex({(0,), (7,)}, static=["perf.multi-persist-tx"])}),

    _t("tx-flush-inside", "tx", "Flushing logged data inside the tx",
       """Explicitly flushing a range the commit will flush again is the
       multi-persist anti-pattern inside a transaction: semantically
       harmless (same outcome pair), but the line crosses the persist
       pipeline twice. Strict mode also reports the flush itself as
       unbarriered — like tx-after-unfenced-flush, the only fence it
       ever meets is the commit's implicit one.""",
       [_TB, _ta(0), _st(0, 0, 7), _fl(0, 0), _TE],
       ("strict", "epoch"),
       {"strict": _ex({(0,), (7,)}, static=["perf.multi-persist-tx",
                                            "strict.missing-barrier"]),
        "epoch": _ex({(0,), (7,)}, static=["perf.multi-persist-tx"])}),

    _t("tx-then-store", "tx", "The commit fence does not cover later writes",
       """A committed transaction followed by a bare store. The commit's
       fence orders everything before it, but the trailing store is
       outside the transaction: never durable under strict persistency,
       evictable under epoch persistency — and in the epoch case only
       *after* the committed value, so (0, 9) is inadmissible.""",
       [_TB, _ta(0), _st(0, 0, 7), _TE, _st(1, 0, 9)],
       ("strict", "epoch"),
       {"strict": _ex({(0, 0), (7, 0)},
                      static=["strict.unflushed-write"]),
        "epoch": _ex({(0, 0), (7, 0), (7, 9)},
                     static=["epoch.unflushed-write"])}),

    _t("tx-after-unfenced-flush", "tx",
       "A commit fence drains bystanders too",
       """An unfenced flush, then an unrelated transaction. The commit's
       fence is a *global* persist barrier: it retires the bystander
       flush as well, so (5, 7) is reachable and x needs no fence of its
       own — but strict mode still reports the flush-then-tx-begin
       idiom, because relying on someone else's commit for your barrier
       is how fences go missing when the transaction is refactored
       away.""",
       [_st(0, 0, 5), _fl(0, 0), _TB, _ta(1), _st(1, 0, 7), _TE],
       ("strict", "epoch"),
       {"strict": _ex({(0, 0), (0, 7), (5, 0), (5, 7)},
                      static=["strict.missing-barrier"]),
        "epoch": _ex({(0, 0), (0, 7), (5, 0), (5, 7)})}),
)

# ---------------------------------------------------------------------------
# perf: Table 5 patterns (all models)
# ---------------------------------------------------------------------------

_PERF = (
    _t("flush-unmodified", "perf", "Flushing a clean line",
       """The second flush targets an object that was never written: a
       wasted pipeline crossing, reported by the performance rule under
       every model. The outcome set is untouched — flushing clean data
       is a cost bug, not a correctness bug.""",
       [_st(0, 0, 5), _fl(0, 0), _FE, _fl(1, 0), _FE],
       MODELS,
       {"strict": _ex({(0,), (5,)}, static=["perf.flush-unmodified"]),
        "epoch": _ex({(0,), (5,)}, static=["perf.flush-unmodified"]),
        "strand": _ex({(0,), (5,)}, static=["perf.flush-unmodified"])}),

    _t("redundant-flush", "perf", "Flushing the same line twice",
       """Two flushes of one dirty line with no store between them: the
       second is redundant (the line is already queued) and the
       performance rule fires under every model. FIFO requeueing means
       the semantics are unchanged.""",
       [_st(0, 0, 5), _fl(0, 0), _fl(0, 0), _FE],
       MODELS,
       {"strict": _ex({(0,), (5,)}, static=["perf.redundant-flush"]),
        "epoch": _ex({(0,), (5,)}, static=["perf.redundant-flush"]),
        "strand": _ex({(0,), (5,)}, static=["perf.redundant-flush"])}),
)

# ---------------------------------------------------------------------------
# faults: injected device misbehaviour (strict + epoch)
# ---------------------------------------------------------------------------

_FAULTS = (
    _t("dropped-writeback", "faults", "A dropped drain defeats the fence",
       """The device silently drops x's write-back during the first
       fence: the fence retires with x still only in cache, and the
       *later* persist of y succeeds — so the crash can expose y without
       x, the exact reordering the fence was meant to forbid. Static
       analysis of the program (which is flawless) reports nothing;
       only trace-level enumeration sees the hole. Note (5, 2) is still
       inadmissible: once dropped, x has no further path to NVM in this
       trace.""",
       [_st(0, 0, 5), _fl(0, 0), _FE, _st(1, 0, 2), _fl(1, 0), _FE],
       ("strict", "epoch"),
       {"strict": _ex({(0, 0), (5, 0), (0, 2)}),
        "epoch": _ex({(0, 0), (5, 0), (0, 2)})},
       fault={"kind": "drop", "at": 0}),

    _t("torn-writeback", "faults", "A torn line persists a prefix",
       """The drain tears after 4 of the line's bytes: the field stores
       2**32 + 1 but the device keeps only the low word, so recovery
       reads the value 1 — neither the old nor the new value. The
       admissible images are old (0), fully-new (2**32 + 1, if the
       crash preempts the drain), and torn (1).""",
       [_st(0, 0, TORN_VALUE), _fl(0, 0), _FE],
       ("strict", "epoch"),
       {"strict": _ex({(0,), (TORN_VALUE,), (1,)}),
        "epoch": _ex({(0,), (TORN_VALUE,), (1,)})},
       fault={"kind": "torn", "at": 0, "keep": 4}),
)

# ---------------------------------------------------------------------------
# lowering: the same persist through non-trivial control flow (all models)
# ---------------------------------------------------------------------------

_LOWERING = (
    _t("loop-persist", "lowering", "A persist loop",
       """The complete persist executed twice by a counted loop. Each
       iteration re-stores the same value, so the outcome set collapses
       to the plain pair — the point is that loop-carried control flow
       (a real back-edge in the IR, explored at multiple trip counts by
       the static collector) neither adds nor masks reports.""",
       [_st(0, 0, 5), _fl(0, 0), _FE],
       MODELS,
       {"strict": _ex({(0,), (5,)}),
        "epoch": _ex({(0,), (5,)}),
        "strand": _ex({(0,), (5,)})},
       loop_count=2),

    _t("helper-persist", "lowering", "A persist behind a call",
       """The complete persist moved into a helper function, so the
       store, flush, and fence the checker must connect sit behind a
       call edge and a pointer argument. Interprocedural analysis keeps
       the verdict identical to the inline pattern: clean, two
       outcomes.""",
       [_st(0, 0, 5), _fl(0, 0), _FE],
       MODELS,
       {"strict": _ex({(0,), (5,)}),
        "epoch": _ex({(0,), (5,)}),
        "strand": _ex({(0,), (5,)})},
       helper_depth=1),
)


CATALOG: Tuple[LitmusTest, ...] = (
    _ORDERING + _EPOCH + _STRAND + _TX + _PERF + _FAULTS + _LOWERING)

#: catalog rendering order for docs and reports
GROUPS: Tuple[str, ...] = (
    "ordering", "epoch", "strand", "tx", "perf", "faults", "lowering")


def get_test(name: str) -> LitmusTest:
    for test in CATALOG:
        if test.name == name:
            return test
    raise KeyError(f"unknown litmus test {name!r}")


def cases(tests: Optional[Iterable[LitmusTest]] = None,
          models: Optional[Iterable[str]] = None
          ) -> List[Tuple[LitmusTest, str]]:
    """(test, model) pairs in catalog order, optionally filtered."""
    model_filter = tuple(models) if models is not None else None
    out: List[Tuple[LitmusTest, str]] = []
    for test in (tests if tests is not None else CATALOG):
        for model in test.models:
            if model_filter is None or model in model_filter:
                out.append((test, model))
    return out


def validate_catalog(catalog: Iterable[LitmusTest] = CATALOG) -> List[str]:
    """Structural problems in the catalog declarations, as messages."""
    problems: List[str] = []
    seen = set()
    for test in catalog:
        where = f"litmus {test.name!r}"
        if test.name in seen:
            problems.append(f"{where}: duplicate name")
        seen.add(test.name)
        if not test.models:
            problems.append(f"{where}: no models")
        for model in test.models:
            if model not in MODELS:
                problems.append(f"{where}: unknown model {model!r}")
        if set(test.expected) != set(test.models):
            problems.append(
                f"{where}: expected keys {sorted(test.expected)} != "
                f"models {sorted(test.models)}")
        if not test.ops:
            problems.append(f"{where}: empty op stream")
        depth: Dict[str, int] = {"epoch": 0, "strand": 0, "tx": 0}
        for op in test.ops:
            if op[0] not in OP_KINDS:
                problems.append(f"{where}: unknown op kind {op[0]!r}")
                continue
            for region in depth:
                if op[0] == f"{region}_begin":
                    depth[region] += 1
                elif op[0] == f"{region}_end":
                    depth[region] -= 1
                    if depth[region] < 0:
                        problems.append(f"{where}: unbalanced {region}")
        for region, d in depth.items():
            if d > 0:
                problems.append(f"{where}: unclosed {region}")
        objs = {op[1] for op in test.ops
                if op[0] in ("store", "flush", "tx_add")}
        if objs and objs != set(range(max(objs) + 1)):
            problems.append(f"{where}: non-contiguous object indices")
        if not test.observed_fields():
            problems.append(f"{where}: no stored field to observe")
        n_fields = sum(test.field_counts)
        for model, exp in test.expected.items():
            if not exp.outcomes:
                problems.append(f"{where}/{model}: empty outcome set")
            width = len(test.observed_fields())
            for outcome in exp.outcomes:
                if len(outcome) != width:
                    problems.append(
                        f"{where}/{model}: outcome width {len(outcome)} "
                        f"!= {width} observed fields")
        if n_fields > 8:
            problems.append(f"{where}: too many fields ({n_fields})")
    return problems
