"""The perf ratchet: diff two bench trajectories and fail on regression.

``deepmc bench --compare BASELINE`` lands here. The comparison is
per-scenario and per-stage: scenario wall-clock (trimmed mean) is the
headline metric, stage rollups localize a slowdown, and counter drift is
reported (never failed on — a count change means the *workload* changed,
which is a correctness-review question, not a perf one). A baseline
scenario that is *missing* from the current run fails the ratchet — it
usually means the bench crashed partway, and ratcheting only the
surviving scenarios would pass a broken run. Scenarios that are *new*
(in current, not baseline) are informational.

A metric regresses when ``current > baseline * (1 + tolerance)`` **and**
the absolute delta clears a small floor (``min_delta_s``) — without the
floor, a 2 ms phase jumping to 5 ms on a noisy runner would fail builds
while changing nothing anyone can feel. The tolerance band is
configurable precisely because the committed baseline and the CI runner
are different machine classes; the fingerprint ids in both payloads are
compared so a cross-machine diff is labelled as such in the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

#: regress when current exceeds baseline by more than this fraction
DEFAULT_TOLERANCE = 0.5
#: ignore regressions whose absolute delta is under this many seconds
DEFAULT_MIN_DELTA_S = 0.05

#: Delta.status values that mean "the ratchet fails the build".
#: "missing" fails too: a baseline scenario absent from the current run
#: usually means the bench crashed partway — ratcheting only the
#: surviving scenarios would report ok on a broken run.
FAILING_STATUSES = frozenset({"regression", "missing"})


@dataclass
class Delta:
    """One compared metric of one scenario."""

    scenario: str
    metric: str          # "wall" or "stage:<name>"
    baseline: float
    current: float
    status: str          # ok | regression | improved | new | missing

    @property
    def delta_pct(self) -> float:
        if self.baseline <= 0:
            return 0.0
        return (self.current / self.baseline - 1.0) * 100.0


@dataclass
class Comparison:
    """Full diff of two trajectories."""

    tolerance: float
    deltas: List[Delta] = field(default_factory=list)
    #: counter names whose values differ, per scenario (informational)
    counter_drift: Dict[str, List[str]] = field(default_factory=dict)
    #: scenarios whose VM engine changed: {scenario: (baseline, current)}
    engine_shift: Dict[str, tuple] = field(default_factory=dict)
    #: fingerprint ids differ → timings are cross-machine
    cross_machine: bool = False

    @property
    def failures(self) -> List[Delta]:
        return [d for d in self.deltas if d.status in FAILING_STATUSES]

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.failures


def _classify(base: float, cur: float, tolerance: float,
              min_delta_s: float) -> str:
    if cur > base * (1.0 + tolerance) and cur - base > min_delta_s:
        return "regression"
    if base > cur * (1.0 + tolerance) and base - cur > min_delta_s:
        return "improved"
    return "ok"


def compare_bench(baseline: Dict[str, Dict[str, Any]],
                  current: Dict[str, Dict[str, Any]],
                  tolerance: float = DEFAULT_TOLERANCE,
                  min_delta_s: float = DEFAULT_MIN_DELTA_S) -> Comparison:
    """Diff two ``{scenario: payload}`` trajectories."""
    comp = Comparison(tolerance=tolerance)
    for scenario in sorted(set(baseline) | set(current)):
        if scenario not in current:
            base_wall = baseline[scenario]["timing"]["trimmed_mean_s"]
            comp.deltas.append(Delta(scenario, "wall", base_wall, 0.0,
                                     "missing"))
            continue
        if scenario not in baseline:
            cur_wall = current[scenario]["timing"]["trimmed_mean_s"]
            comp.deltas.append(Delta(scenario, "wall", 0.0, cur_wall, "new"))
            continue
        b, c = baseline[scenario], current[scenario]
        if b.get("env", {}).get("id") != c.get("env", {}).get("id"):
            comp.cross_machine = True
        base_wall = b["timing"]["trimmed_mean_s"]
        cur_wall = c["timing"]["trimmed_mean_s"]
        comp.deltas.append(Delta(
            scenario, "wall", base_wall, cur_wall,
            _classify(base_wall, cur_wall, tolerance, min_delta_s)))
        b_stages = b.get("stages", {})
        c_stages = c.get("stages", {})
        for stage in sorted(set(b_stages) & set(c_stages)):
            bs = b_stages[stage]["total_s"]
            cs = c_stages[stage]["total_s"]
            # only stages big enough to matter can fail the ratchet
            if max(bs, cs) < min_delta_s:
                continue
            comp.deltas.append(Delta(
                scenario, f"stage:{stage}", bs, cs,
                _classify(bs, cs, tolerance, min_delta_s)))
        drift = [
            name for name in sorted(set(b.get("counters", {}))
                                    | set(c.get("counters", {})))
            if b.get("counters", {}).get(name)
            != c.get("counters", {}).get(name)
        ]
        if drift:
            comp.counter_drift[scenario] = drift
        b_engine = b.get("workload", {}).get("engine")
        c_engine = c.get("workload", {}).get("engine")
        if b_engine != c_engine and (b_engine or c_engine):
            comp.engine_shift[scenario] = (b_engine, c_engine)
    return comp


def render_compare(comp: Comparison) -> str:
    """The regression table the CI job prints into its summary."""
    header = ["scenario", "metric", "baseline", "current", "delta", "status"]
    rows = []
    for d in comp.deltas:
        rows.append([
            d.scenario, d.metric,
            f"{d.baseline * 1e3:.1f}ms", f"{d.current * 1e3:.1f}ms",
            f"{d.delta_pct:+.1f}%" if d.status not in ("new", "missing")
            else "-",
            d.status.upper() if d.status in FAILING_STATUSES else d.status,
        ])
    widths = [max(len(r[i]) for r in [header] + rows)
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    lines.append("")
    if comp.cross_machine:
        lines.append("note: baseline and current fingerprints differ — "
                     "timings are cross-machine")
    for scenario, (b_eng, c_eng) in sorted(comp.engine_shift.items()):
        lines.append(
            f"note: {scenario} VM engine changed "
            f"({b_eng or '?'} -> {c_eng or '?'}): wall-clock deltas "
            f"reflect the engine, and vm.optime.* timing attribution "
            f"shifts by design (docs/VM.md) — but vm.op.* counts and "
            f"persist.* counters must still match, so counter drift "
            f"here is NOT explained by the engine")
    for scenario, names in sorted(comp.counter_drift.items()):
        shown = ", ".join(names[:6]) + (" …" if len(names) > 6 else "")
        lines.append(f"note: {scenario} counter drift "
                     f"({len(names)}): {shown}")
    tol_pct = comp.tolerance * 100.0
    n_regressed = len(comp.regressions)
    n_missing = sum(1 for d in comp.failures if d.status == "missing")
    if comp.failures:
        parts = []
        if n_regressed:
            parts.append(f"{n_regressed} metric(s) regressed beyond "
                         f"+{tol_pct:.0f}% tolerance")
        if n_missing:
            parts.append(f"{n_missing} baseline scenario(s) missing "
                         f"from the current run")
        lines.append("FAIL: " + "; ".join(parts))
    else:
        lines.append(f"ok: no regressions beyond +{tol_pct:.0f}% tolerance")
    return "\n".join(lines)
