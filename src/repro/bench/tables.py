"""Renderers for the paper's study tables (2, 3, 4, 5, 6, 7, 8).

Tables 1/8/3 derive from a live :class:`DetectionResult`; tables 4/5 print
the rule specifications; 6/7 describe the benchmark setup.
"""

from __future__ import annotations

import platform
from typing import Dict, List, Optional, Tuple

from ..corpus import REGISTRY
from ..corpus.registry import (
    FRAMEWORK_AGE_YEARS,
    FRAMEWORK_DISPLAY,
    BugSpec,
)
from ..models import ALL_RULES, CATEGORY_VIOLATION, MODELS
from .detection import DetectionResult


def _format(header: List[str], rows: List[List[str]]) -> str:
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    out = ["  ".join(h.ljust(w) for h, w in zip(header, widths)),
           "  ".join("-" * w for w in widths)]
    for r in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Table 2 — studied bug counts per framework
# ---------------------------------------------------------------------------

def table2_counts(result: Optional[DetectionResult] = None
                  ) -> Dict[str, Tuple[int, int]]:
    """framework -> (violation, performance) counts of *studied* bugs."""
    counts: Dict[str, Tuple[int, int]] = {}
    bugs = (
        result.validated_bugs(studied=True)
        if result is not None
        else REGISTRY.bugs(studied=True, real=True)
    )
    for b in bugs:
        v, p = counts.get(b.framework, (0, 0))
        if b.category == "violation":
            v += 1
        else:
            p += 1
        counts[b.framework] = (v, p)
    return counts


def render_table2(result: Optional[DetectionResult] = None) -> str:
    counts = table2_counts(result)
    rows = []
    tv = tp = 0
    for fw in ("pmdk", "pmfs", "nvm_direct"):
        v, p = counts.get(fw, (0, 0))
        tv += v
        tp += p
        rows.append([FRAMEWORK_DISPLAY[fw], str(v), str(p), str(v + p)])
    rows.append(["Total", str(tv), str(tp), str(tv + tp)])
    return _format(
        ["Framework/Library", "Model Violation Bugs", "Performance Bugs",
         "Total Bugs"],
        rows,
    )


# ---------------------------------------------------------------------------
# Tables 3 and 8 — per-bug listings
# ---------------------------------------------------------------------------

def _bug_rows(bugs: List[BugSpec], with_age: bool) -> List[List[str]]:
    rows = []
    for b in bugs:
        tag = "[V]" if b.category == CATEGORY_VIOLATION else "[P]"
        row = [
            FRAMEWORK_DISPLAY[b.framework],
            b.file,
            str(b.line),
            b.location,
            f"{tag} {b.description}",
        ]
        if with_age:
            row.append(f"{b.years:.1f}")
        rows.append(row)
    return rows


def render_table3(result: DetectionResult) -> str:
    """The 19 studied bugs, as re-detected by the checker."""
    bugs = result.validated_bugs(studied=True)
    header = ["Library", "File", "Line", "Loc", "Bug Description"]
    return _format(header, _bug_rows(bugs, with_age=False))


def render_table8(result: DetectionResult) -> str:
    """The 24 new bugs, with the Table 8 age column."""
    bugs = result.validated_bugs(studied=False)
    header = ["Library", "File", "Line", "Loc", "Bug Description", "Years"]
    return _format(header, _bug_rows(bugs, with_age=True))


def new_bug_age_average(result: DetectionResult) -> float:
    bugs = result.validated_bugs(studied=False)
    if not bugs:
        return 0.0
    return sum(b.years for b in bugs) / len(bugs)


# ---------------------------------------------------------------------------
# Tables 4 and 5 — the checking rules
# ---------------------------------------------------------------------------

def render_table4() -> str:
    rows = []
    for model_name in ("strict", "epoch", "strand"):
        model = MODELS[model_name]
        for rule in model.violation_rules():
            rows.append([model_name.capitalize(), rule.title, rule.formal])
    return _format(["Model", "Persistency Model Violation", "Checking Rule"],
                   rows)


def render_table5() -> str:
    rows = [
        [r.title, r.formal]
        for r in ALL_RULES
        if r.category == "performance"
    ]
    return _format(["Performance Bug", "Checking Rule"], rows)


# ---------------------------------------------------------------------------
# Tables 6 and 7 — benchmark list and system configuration
# ---------------------------------------------------------------------------

def render_table6() -> str:
    rows = [
        ["Memcached", "Mnemosyne", "memslap-style mixes (update/read/insert/rmw)"],
        ["Redis", "PMDK", "redis-benchmark defaults (SET/GET/INCR/LPUSH/LPOP)"],
        ["NStore", "Low-level implts", "YCSB A-E"],
    ]
    return _format(["Application", "Library", "Benchmark"], rows)


def render_table7() -> str:
    import sys

    rows = [
        ["Processor", platform.processor() or platform.machine()],
        ["Platform", platform.platform()],
        ["Python", sys.version.split()[0]],
        ["Substrate", "simulated NVM (write-back cache + persist domain)"],
    ]
    return _format(["Component", "Configuration"], rows)
