"""Experiment harness: one function per paper table/figure."""

from .detection import (
    DetectionResult,
    ProgramError,
    ProgramOutcome,
    render_table1,
    run_detection,
)
from .overhead import (
    CompileTiming,
    FixSpeedup,
    OverheadPoint,
    measure_compile_times,
    measure_dynamic_overhead,
    measure_figure12,
    measure_fix_speedups,
    render_figure12,
    render_fix_speedups,
    render_table9,
)
from .tables import (
    new_bug_age_average,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    table2_counts,
)

__all__ = [
    "CompileTiming",
    "DetectionResult",
    "FixSpeedup",
    "OverheadPoint",
    "ProgramError",
    "ProgramOutcome",
    "measure_compile_times",
    "measure_dynamic_overhead",
    "measure_figure12",
    "measure_fix_speedups",
    "new_bug_age_average",
    "render_figure12",
    "render_fix_speedups",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_table7",
    "render_table8",
    "render_table9",
    "run_detection",
    "table2_counts",
]
