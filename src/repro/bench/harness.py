"""``deepmc bench``: the pinned performance suite and its trajectory files.

Every speed claim in this repo flows through here. The harness runs a
pinned set of scenarios — static checking over the corpus, crashsim
enumeration, a fuzz mini-campaign, interpreter-only runs of the
application workloads, and the VM op profiler's own overhead — with
warmup + repeat + trimmed-mean timing, and emits one schema-versioned,
sorted-keys ``BENCH_<scenario>.json`` per scenario. Those files are the
performance trajectory: the committed copies at the repo root are the
baseline the CI perf ratchet (:mod:`repro.bench.compare`) diffs against,
so a later bytecode-VM or DPOR PR has to *show* its speedup the same way
a correctness PR has to show green tests.

Each trajectory file records, besides wall-clock:

* **stage rollups** — per-span-name total seconds from the scenario's
  last repeat, so a regression can be localized (did ``check.dsa`` or
  ``vm.run`` get slower?);
* **op counters** — every telemetry counter, including the VM op
  profiler's ``vm.op.*`` stream; counters are deterministic for a given
  workload, so a *count* change means the workload changed, separating
  "doing more work" from "doing the same work slower";
* **an environment fingerprint** — machine class, Python, timestamp —
  so a number is never divorced from the machine that produced it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ReproError
from ..telemetry import Telemetry, environment_fingerprint, flatten_spans

#: bumped whenever the BENCH_*.json layout changes shape
BENCH_SCHEMA = "deepmc.bench/v1"

#: default measurement protocol
DEFAULT_WARMUP = 1
DEFAULT_REPEATS = 3

#: default per-iteration ops for the VM workload scenarios — small enough
#: that the whole suite stays in CI-friendly territory, large enough that
#: the interpreter dominates setup
DEFAULT_VM_OPS = 400


@dataclass
class BenchConfig:
    """Knobs shared by every scenario (all pinned into the payload)."""

    warmup: int = DEFAULT_WARMUP
    repeats: int = DEFAULT_REPEATS
    ops: int = DEFAULT_VM_OPS
    max_states: int = 512
    fuzz_seeds: Sequence[int] = (0,)
    fuzz_budget: int = 4

    def as_dict(self) -> Dict[str, Any]:
        return {
            "warmup": self.warmup,
            "repeats": self.repeats,
            "ops": self.ops,
            "max_states": self.max_states,
            "fuzz_seeds": list(self.fuzz_seeds),
            "fuzz_budget": self.fuzz_budget,
        }


@dataclass
class Scenario:
    """One pinned workload: ``run(telemetry, config)`` is the timed unit."""

    name: str
    description: str
    run: Callable[[Telemetry, BenchConfig], Optional[Dict[str, Any]]]


# ---------------------------------------------------------------------------
# the pinned suite
# ---------------------------------------------------------------------------

def _scenario_check_corpus(tel: Telemetry,
                           config: BenchConfig) -> Dict[str, Any]:
    """Static pipeline over the whole registry (serial, cache off)."""
    from .detection import run_detection

    result = run_detection(telemetry=tel)
    return {"programs": len(result.outcomes),
            "warnings": result.total_warnings}


def _scenario_crashsim_enum(tel: Telemetry,
                            config: BenchConfig) -> Dict[str, Any]:
    """Record → enumerate → classify for two representative programs."""
    from ..crashsim import simulate_programs

    payloads = simulate_programs(["pmdk_hashmap", "pmfs_journal"],
                                 max_states=config.max_states,
                                 telemetry=tel)
    bad = [p for p in payloads if not p.get("ok")]
    if bad:
        raise ReproError(f"crashsim scenario failed: {bad[0].get('error')}")
    return {
        "states": sum(p["result"]["states"] for p in payloads),
        "failing": sum(len(p["result"]["failing"]) for p in payloads),
    }


def _scenario_fuzz_smoke(tel: Telemetry,
                         config: BenchConfig) -> Dict[str, Any]:
    """One-seed differential mini-campaign (generation + three engines)."""
    from ..fuzz import run_fuzz

    report = run_fuzz(seeds=list(config.fuzz_seeds),
                      budget=config.fuzz_budget, shrink=False,
                      telemetry=tel)
    if report["errors"]:
        raise ReproError(
            f"fuzz scenario failed: {report['errors'][0]['error']}")
    return {"programs": report["programs"],
            "disagreements": len(report["disagreements"])}


#: app modules are built once per process and reused across warmup and
#: repeats — the scenario times the *interpreter*, not the IR builders
_APP_MODULES: List = []


def _app_modules() -> List:
    if not _APP_MODULES:
        from ..apps import ALL_MIXES, APP_BUILDERS

        _APP_MODULES.extend((app, builder(ALL_MIXES[app][0]))
                            for app, builder in APP_BUILDERS.items())
    return _APP_MODULES


def _run_vm_apps(tel: Telemetry, config: BenchConfig,
                 engine: Optional[str]) -> Dict[str, Any]:
    from ..vm.engine import make_interpreter, resolve_engine
    from ..vm.scheduler import SeededScheduler

    steps = 0
    for _app, module in _app_modules():
        result = make_interpreter(module, engine=engine, telemetry=tel,
                                  scheduler=SeededScheduler(seed=1)
                                  ).run("main", [config.ops])
        steps += result.steps
    return {"steps": steps, "engine": resolve_engine(engine)}


def _scenario_vm_apps(tel: Telemetry, config: BenchConfig) -> Dict[str, Any]:
    """Interpreter-only run of each application's first workload mix."""
    return _run_vm_apps(tel, config, engine=None)


def _scenario_vm_apps_bytecode(tel: Telemetry,
                               config: BenchConfig) -> Dict[str, Any]:
    """The same application workloads, engine pinned to ``bytecode``.

    ``vm_apps`` follows the ambient engine (``DEEPMC_ENGINE``), so an
    engine A/B comparison is one env var away; this scenario stays on
    the fast path regardless, anchoring the bytecode trajectory."""
    return _run_vm_apps(tel, config, engine="bytecode")


def _scenario_profiler_overhead(tel: Telemetry,
                                config: BenchConfig) -> Dict[str, Any]:
    """Measured self-overhead of the VM op profiler (Figure-12-style).

    Runs the same workload back to back with the profiler force-off and
    force-on under the *same* (enabled) telemetry, so the only delta is
    the profiler's counting + sampled timing. The scenario's own
    wall-clock covers both runs; the interesting number is
    ``overhead_pct`` in the workload payload.
    """
    from ..vm.engine import make_interpreter
    from ..vm.scheduler import SeededScheduler

    _app, module = _app_modules()[0]

    def timed(op_profile: bool) -> float:
        t0 = perf_counter()
        make_interpreter(module, telemetry=tel, op_profile=op_profile,
                         scheduler=SeededScheduler(seed=1)
                         ).run("main", [config.ops])
        return perf_counter() - t0

    base_s = min(timed(False) for _ in range(2))
    profiled_s = min(timed(True) for _ in range(2))
    overhead = (profiled_s / base_s - 1.0) * 100.0 if base_s > 0 else 0.0
    return {
        "baseline_s": round(base_s, 6),
        "profiled_s": round(profiled_s, 6),
        "overhead_pct": round(max(overhead, 0.0), 2),
    }


#: the serve_warm daemon is started once per process and reused across
#: warmup and repeats (the idiom of ``_APP_MODULES``): the scenario
#: times the *warm serving path* — protocol framing, artifact-store
#: lookup, session filtering, socket round-trips — not daemon startup
#: or the underlying (already-cached) analysis
_SERVE_STATE: List = []

#: warm working set + requests per timed run
_SERVE_WARM_PROGRAMS = ("pmdk_hashmap", "pmdk_btree_map", "pmfs_journal")
_SERVE_WARM_REQUESTS = 32


def _serve_state():
    if not _SERVE_STATE:
        import atexit
        import tempfile
        from pathlib import Path

        from ..serve import DeepMCServer, ServeConfig, connect

        root = Path(tempfile.mkdtemp(prefix="deepmc-bench-serve-"))
        server = DeepMCServer(ServeConfig(
            socket_path=str(root / "serve.sock"),
            jobs=1,
            warm_programs=_SERVE_WARM_PROGRAMS,
        ))
        server.start()
        client = connect(socket_path=str(root / "serve.sock"))
        atexit.register(lambda: (client.close(),
                                 server.shutdown(drain=True, timeout=5.0)))
        _SERVE_STATE.append((server, client))
    return _SERVE_STATE[0]


def _scenario_serve_warm(tel: Telemetry,
                         config: BenchConfig) -> Dict[str, Any]:
    """Warm-path request latency of the serve daemon: a round-robin of
    ``check`` requests over a pre-warmed three-program working set, all
    answered from the artifact store on connection threads."""
    _server, client = _serve_state()
    warm_hits = 0
    for i in range(_SERVE_WARM_REQUESTS):
        program = _SERVE_WARM_PROGRAMS[i % len(_SERVE_WARM_PROGRAMS)]
        response = client.call("check", {"program": program})
        if response["meta"].get("served") == "warm":
            warm_hits += 1
    if warm_hits != _SERVE_WARM_REQUESTS:
        # a cold miss would silently time a recompute instead of the
        # RPC + artifact-hit path this scenario pins
        raise ReproError(
            f"serve_warm scenario expected every request warm, got "
            f"{warm_hits}/{_SERVE_WARM_REQUESTS}")
    return {"requests": _SERVE_WARM_REQUESTS,
            "warm_hits": warm_hits,
            "programs": len(_SERVE_WARM_PROGRAMS)}


def _scenario_litmus(tel: Telemetry, config: BenchConfig) -> Dict[str, Any]:
    """Full litmus catalog, serial: three engines per (test, model) case."""
    from ..litmus import run_litmus

    payload = run_litmus(telemetry=tel)
    if payload["summary"]["errors"]:
        raise ReproError(
            f"litmus scenario failed: {payload['errors'][0]['error']}")
    return {"cases": payload["summary"]["cases"],
            "disagreeing": payload["summary"]["disagreeing"]}


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario("check_corpus",
                 "static check of every corpus program (serial, no cache)",
                 _scenario_check_corpus),
        Scenario("crashsim_enum",
                 "crash-image enumeration + recovery classification "
                 "(pmdk_hashmap, pmfs_journal)",
                 _scenario_crashsim_enum),
        Scenario("fuzz_smoke",
                 "differential fuzz mini-campaign (1 seed, no shrink)",
                 _scenario_fuzz_smoke),
        Scenario("vm_apps",
                 "interpreter-only run of the application workloads",
                 _scenario_vm_apps),
        Scenario("vm_apps_bytecode",
                 "application workloads pinned to the bytecode engine",
                 _scenario_vm_apps_bytecode),
        Scenario("op_profiler_overhead",
                 "VM op profiler self-overhead, profiler off vs on",
                 _scenario_profiler_overhead),
        Scenario("litmus",
                 "litmus catalog three-way cross-validation (all models)",
                 _scenario_litmus),
        Scenario("serve_warm",
                 "serve daemon warm-path latency: 32 check requests "
                 "against a pre-warmed artifact store",
                 _scenario_serve_warm),
    )
}


# ---------------------------------------------------------------------------
# measurement protocol
# ---------------------------------------------------------------------------

def trimmed_mean(samples: Sequence[float]) -> float:
    """Mean with the single fastest and slowest repeat dropped (when
    there are at least three), the usual guard against one noisy CI
    neighbour."""
    if not samples:
        return 0.0
    if len(samples) < 3:
        return sum(samples) / len(samples)
    ordered = sorted(samples)[1:-1]
    return sum(ordered) / len(ordered)


def rollup_stages(roots) -> Dict[str, Dict[str, Any]]:
    """Total seconds and call counts per span name across a forest."""
    out: Dict[str, Dict[str, Any]] = {}
    for span in flatten_spans(roots):
        entry = out.setdefault(span.name, {"calls": 0, "total_s": 0.0})
        entry["calls"] += 1
        entry["total_s"] += span.duration_s
    for entry in out.values():
        entry["total_s"] = round(entry["total_s"], 6)
    return dict(sorted(out.items()))


def run_scenario(scenario: Scenario,
                 config: Optional[BenchConfig] = None) -> Dict[str, Any]:
    """Run one scenario under the warmup+repeat protocol; returns the
    (JSON-ready, schema-versioned) trajectory payload."""
    config = config or BenchConfig()
    for _ in range(max(config.warmup, 0)):
        scenario.run(Telemetry(), config)
    samples: List[float] = []
    workload: Dict[str, Any] = {}
    tel = Telemetry()
    for _ in range(max(config.repeats, 1)):
        tel = Telemetry()
        t0 = perf_counter()
        workload = scenario.run(tel, config) or {}
        samples.append(perf_counter() - t0)
    counters = tel.metrics.dump()["counters"]
    return {
        "schema": BENCH_SCHEMA,
        "scenario": scenario.name,
        "description": scenario.description,
        "config": config.as_dict(),
        "env": environment_fingerprint(),
        "timing": {
            "samples_s": [round(s, 6) for s in samples],
            "mean_s": round(sum(samples) / len(samples), 6),
            "trimmed_mean_s": round(trimmed_mean(samples), 6),
            "min_s": round(min(samples), 6),
            "max_s": round(max(samples), 6),
        },
        "stages": rollup_stages(tel.tracer.roots),
        "counters": dict(sorted(counters.items())),
        "workload": dict(sorted(workload.items())),
    }


def run_suite(names: Optional[Sequence[str]] = None,
              config: Optional[BenchConfig] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> List[Dict[str, Any]]:
    """Run the named scenarios (default: the whole pinned suite)."""
    selected = list(names) if names else list(SCENARIOS)
    unknown = [n for n in selected if n not in SCENARIOS]
    if unknown:
        raise ReproError(
            f"unknown bench scenario(s): {', '.join(unknown)} "
            f"(choose from {', '.join(SCENARIOS)})")
    payloads = []
    for name in selected:
        if progress is not None:
            progress(name)
        payloads.append(run_scenario(SCENARIOS[name], config))
    return payloads


# ---------------------------------------------------------------------------
# trajectory files
# ---------------------------------------------------------------------------

def bench_filename(scenario: str) -> str:
    return f"BENCH_{scenario}.json"


def write_bench(payload: Dict[str, Any], out_dir: str = ".") -> Path:
    """Write one sorted-keys trajectory file; returns its path."""
    path = Path(out_dir) / bench_filename(payload["scenario"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_bench(path: str) -> Dict[str, Dict[str, Any]]:
    """Load trajectory payloads from a file or a directory of
    ``BENCH_*.json`` files; returns ``{scenario: payload}``."""
    p = Path(path)
    if p.is_dir():
        files = sorted(p.glob("BENCH_*.json"))
        if not files:
            raise ReproError(f"no BENCH_*.json files in {p}")
    else:
        if not p.exists():
            raise ReproError(f"no such bench file: {p}")
        files = [p]
    out: Dict[str, Dict[str, Any]] = {}
    for f in files:
        payload = json.loads(f.read_text(encoding="utf-8"))
        scenario = payload.get("scenario")
        if not scenario or not str(payload.get("schema", "")
                                   ).startswith("deepmc.bench/"):
            raise ReproError(f"{f} is not a deepmc bench trajectory file")
        out[scenario] = payload
    return out


def render_results(payloads: List[Dict[str, Any]]) -> str:
    """Human-readable suite summary table."""
    header = ["scenario", "trimmed mean", "min", "max", "stages", "notes"]
    rows = []
    for p in payloads:
        t = p["timing"]
        note = "  ".join(f"{k}={v}" for k, v in p["workload"].items())
        rows.append([p["scenario"], f"{t['trimmed_mean_s'] * 1e3:.1f}ms",
                     f"{t['min_s'] * 1e3:.1f}ms", f"{t['max_s'] * 1e3:.1f}ms",
                     str(len(p["stages"])), note])
    widths = [max(len(r[i]) for r in [header] + rows)
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    env = payloads[0]["env"] if payloads else {}
    if env:
        from ..telemetry import render_fingerprint

        lines.append("")
        lines.append(f"env: {render_fingerprint(env)}")
    return "\n".join(lines)
