"""Overhead experiments: Table 9, Figure 12, and the §5.1 fix speedups.

* **Table 9** — "compilation" time of the real applications with and
  without DeepMC. Baseline = building + verifying the IR module (what a
  compiler does anyway); +DeepMC adds the full static pipeline (DSA, trace
  collection, rule checking).
* **Figure 12** — runtime throughput of the applications with and without
  the dynamic checker attached: the instrumented module executes real
  ``__deepmc_*`` hook calls into the shadow-memory runtime.
* **§5.1** — cycle-accurate speedup from fixing the corpus's performance
  bugs, measured on the simulated NVM cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..apps import ALL_MIXES, APP_BUILDERS, Mix
from ..checker.engine import StaticChecker
from ..corpus import REGISTRY
from ..corpus.registry import CorpusProgram, PERFORMANCE_CLASSES
from ..dynamic.checker import DynamicChecker
from ..ir.verifier import verify_module
from ..vm.engine import make_interpreter


# ---------------------------------------------------------------------------
# Table 9 — compile time with/without DeepMC
# ---------------------------------------------------------------------------

@dataclass
class CompileTiming:
    app: str
    baseline_s: float
    with_deepmc_s: float

    @property
    def delta_s(self) -> float:
        return self.with_deepmc_s - self.baseline_s


def measure_compile_times(repeats: int = 3) -> List[CompileTiming]:
    """Best-of-N build(+verify) vs build(+verify)+static-analysis times,
    summed over every workload variant of each application (a real build
    compiles all of an app's translation units)."""
    out: List[CompileTiming] = []
    for app, builder in APP_BUILDERS.items():
        mixes = ALL_MIXES[app]
        base = dm = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for m in mixes:
                module = builder(m)
                verify_module(module)
            t1 = time.perf_counter()
            for m in mixes:
                module = builder(m)
                StaticChecker(module).run()
            t2 = time.perf_counter()
            base = min(base, t1 - t0)
            dm = min(dm, t2 - t1)
        out.append(CompileTiming(app, base, dm))
    return out


def render_table9(timings: List[CompileTiming]) -> str:
    header = ["Benchmark", "Baseline (s)", "Compilation with DeepMC (s)", "Delta (s)"]
    rows = [
        [t.app, f"{t.baseline_s:.3f}", f"{t.with_deepmc_s:.3f}", f"{t.delta_s:.3f}"]
        for t in timings
    ]
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 12 — dynamic-analysis throughput overhead
# ---------------------------------------------------------------------------

@dataclass
class OverheadPoint:
    app: str
    mix: Mix
    ops: int
    baseline_tps: float
    checked_tps: float
    hook_events: int

    @property
    def overhead_pct(self) -> float:
        if self.baseline_tps <= 0:
            return 0.0
        return max(0.0, (1.0 - self.checked_tps / self.baseline_tps) * 100.0)


def _best_run_seconds(run: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_dynamic_overhead(
    app: str,
    mix: Mix,
    ops: int = 2000,
    repeats: int = 3,
) -> OverheadPoint:
    """Throughput with vs without the dynamic checker for one workload."""
    from ..vm.scheduler import SeededScheduler

    builder = APP_BUILDERS[app]

    base_module = builder(mix)

    def run_base() -> None:
        # Same scheduler class as the checked run so the comparison
        # isolates the instrumentation + runtime cost.
        make_interpreter(base_module,
                         scheduler=SeededScheduler(seed=1)).run("main", [ops])

    base_s = _best_run_seconds(run_base, repeats)

    checked_module = builder(mix)
    checker = DynamicChecker(checked_module)
    events = 0

    def run_checked() -> None:
        nonlocal events
        _report, runs = checker.run("main", [ops], seeds=(1,))
        events = runs[-1].runtime.events_handled

    checked_s = _best_run_seconds(run_checked, repeats)

    return OverheadPoint(
        app=app,
        mix=mix,
        ops=ops,
        baseline_tps=ops / base_s,
        checked_tps=ops / checked_s,
        hook_events=events,
    )


def measure_figure12(ops: int = 2000, repeats: int = 3,
                     apps: Optional[List[str]] = None) -> List[OverheadPoint]:
    points: List[OverheadPoint] = []
    for app in apps or list(APP_BUILDERS):
        for mix in ALL_MIXES[app]:
            points.append(measure_dynamic_overhead(app, mix, ops, repeats))
    return points


def render_figure12(points: List[OverheadPoint]) -> str:
    header = ["App", "Workload", "Baseline tx/s", "DeepMC tx/s",
              "Overhead %", "Hook events"]
    rows = [
        [p.app, p.mix.name, f"{p.baseline_tps:,.0f}", f"{p.checked_tps:,.0f}",
         f"{p.overhead_pct:.1f}", str(p.hook_events)]
        for p in points
    ]
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §5.1 — application speedup from fixing the performance bugs
# ---------------------------------------------------------------------------

@dataclass
class FixSpeedup:
    program: str
    buggy_cycles: int
    fixed_cycles: int

    @property
    def improvement_pct(self) -> float:
        if self.buggy_cycles <= 0:
            return 0.0
        return (self.buggy_cycles - self.fixed_cycles) / self.buggy_cycles * 100.0


def measure_fix_speedups(repeat: int = 64) -> List[FixSpeedup]:
    """Simulated-cycle comparison of buggy vs fixed corpus programs that
    contain performance bugs."""
    out: List[FixSpeedup] = []
    for program in REGISTRY.programs():
        if not any(b.real and b.bug_class in PERFORMANCE_CLASSES
                   for b in program.bugs):
            continue
        cycles: Dict[object, int] = {}
        for fixed in (False, "perf"):
            module = program.build(fixed=fixed, repeat=repeat)
            result = make_interpreter(module).run(program.entry)
            cycles[fixed] = result.stats.cycles
        out.append(FixSpeedup(program.name, cycles[False], cycles["perf"]))
    return sorted(out, key=lambda s: -s.improvement_pct)


def render_fix_speedups(speedups: List[FixSpeedup]) -> str:
    header = ["Program", "Buggy cycles", "Fixed cycles", "Improvement %"]
    rows = [
        [s.program, f"{s.buggy_cycles:,}", f"{s.fixed_cycles:,}",
         f"{s.improvement_pct:.1f}"]
        for s in speedups
    ]
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)
