"""Detection experiment: run DeepMC over the whole corpus (§5.1, §5.3, §5.4).

This is the measurement behind Tables 1, 2, 3 and 8: the static checker is
*actually run* on every corpus program and its warnings are matched against
the registry's ground truth (the reproduction's stand-in for the paper's
manual validation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..checker.engine import StaticChecker
from ..checker.report import Warning_
from ..corpus import REGISTRY
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..corpus.registry import (
    ALL_CLASSES,
    FRAMEWORK_DISPLAY,
    FRAMEWORK_MODEL,
    BugSpec,
    CorpusProgram,
)


@dataclass
class ProgramOutcome:
    """Checker output vs ground truth for one corpus program."""

    program: CorpusProgram
    warnings: List[Warning_]
    #: warnings matched to a ground-truth site (real or FP)
    matched: List[Tuple[Warning_, BugSpec]]
    unmatched_warnings: List[Warning_]
    missed_bugs: List[BugSpec]

    @property
    def validated(self) -> List[BugSpec]:
        return [b for _w, b in self.matched if b.real]

    @property
    def false_positives(self) -> List[BugSpec]:
        return [b for _w, b in self.matched if not b.real]


@dataclass
class DetectionResult:
    """Aggregated outcome across the corpus."""

    outcomes: List[ProgramOutcome] = field(default_factory=list)

    # -- aggregate counters -------------------------------------------------
    @property
    def total_warnings(self) -> int:
        return sum(len(o.warnings) for o in self.outcomes)

    @property
    def total_validated(self) -> int:
        return sum(len(o.validated) for o in self.outcomes)

    @property
    def total_false_positives(self) -> int:
        return sum(len(o.false_positives) for o in self.outcomes)

    @property
    def false_positive_rate(self) -> float:
        if not self.total_warnings:
            return 0.0
        return self.total_false_positives / self.total_warnings

    def validated_bugs(self, studied: Optional[bool] = None) -> List[BugSpec]:
        out = []
        for o in self.outcomes:
            for b in o.validated:
                if studied is None or b.studied == studied:
                    out.append(b)
        return sorted(out, key=lambda b: (b.framework, b.file, b.line))

    def missed(self) -> List[BugSpec]:
        return [b for o in self.outcomes for b in o.missed_bugs]

    def unmatched(self) -> List[Warning_]:
        return [w for o in self.outcomes for w in o.unmatched_warnings]

    def matrix(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Measured Table 1: class -> framework -> validated/warnings."""
        out: Dict[str, Dict[str, Dict[str, int]]] = {
            cls: {fw: {"validated": 0, "warnings": 0} for fw in FRAMEWORK_MODEL}
            for cls in ALL_CLASSES
        }
        for o in self.outcomes:
            fw = o.program.framework
            for _w, b in o.matched:
                out[b.bug_class][fw]["warnings"] += 1
                if b.real:
                    out[b.bug_class][fw]["validated"] += 1
        return out


def run_detection(framework: Optional[str] = None,
                  telemetry: Optional[Telemetry] = None,
                  **checker_opts) -> DetectionResult:
    """Run the static checker on every (selected) corpus program.

    ``checker_opts`` are forwarded to :class:`StaticChecker` (and its
    trace collector) — e.g. ``field_sensitive=False`` for the ablation.
    ``telemetry`` (optional) gets one ``corpus.program`` span per program
    plus ``corpus.*`` aggregate counters.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    result = DetectionResult()
    with tel.span("corpus.detection", framework=framework or "all") as top:
        for program in REGISTRY.programs(framework):
            with tel.span("corpus.program", program=program.name,
                          framework=program.framework) as sp:
                module = program.build()
                report = StaticChecker(
                    module, telemetry=telemetry, **checker_opts).run()
                sp.set("warnings", len(report))
            result.outcomes.append(
                _match_ground_truth(program, report))
        top.set("programs", len(result.outcomes))
        top.set("warnings", result.total_warnings)
    if tel.enabled:
        tel.metrics.counter("corpus.programs").inc(len(result.outcomes))
        tel.metrics.counter("corpus.warnings").inc(result.total_warnings)
        tel.metrics.counter("corpus.validated").inc(result.total_validated)
        tel.metrics.counter("corpus.false_positives").inc(
            result.total_false_positives)
        tel.event("corpus_detection", framework=framework or "all",
                  programs=len(result.outcomes),
                  warnings=result.total_warnings,
                  validated=result.total_validated,
                  false_positives=result.total_false_positives)
    return result


def _match_ground_truth(program: CorpusProgram, report) -> ProgramOutcome:
    """Match one program's warnings against its registry ground truth."""
    warnings = report.warnings()
    by_key = {(b.rule_id, b.file, b.line): b for b in program.bugs}
    matched: List[Tuple[Warning_, BugSpec]] = []
    unmatched: List[Warning_] = []
    seen = set()
    for w in warnings:
        key = (w.rule_id, w.loc.file, w.loc.line)
        bug = by_key.get(key)
        if bug is not None:
            matched.append((w, bug))
            seen.add(key)
        else:
            unmatched.append(w)
    missed = [b for k, b in by_key.items() if k not in seen]
    return ProgramOutcome(program, warnings, matched, unmatched, missed)


def render_table1(result: DetectionResult) -> str:
    """Text rendering in the layout of the paper's Table 1."""
    frameworks = ["pmdk", "nvm_direct", "pmfs", "mnemosyne"]
    header = ["Bug Description"] + [FRAMEWORK_DISPLAY[f] for f in frameworks]
    rows: List[List[str]] = []
    matrix = result.matrix()
    totals = {f: [0, 0] for f in frameworks}
    for cls in ALL_CLASSES:
        row = [cls]
        for f in frameworks:
            cell = matrix[cls][f]
            if cell["warnings"] == 0:
                row.append("-")
            else:
                row.append(f"{cell['validated']}/{cell['warnings']}")
                totals[f][0] += cell["validated"]
                totals[f][1] += cell["warnings"]
        rows.append(row)
    rows.append(
        ["Total"] + [f"{totals[f][0]}/{totals[f][1]}" for f in frameworks]
    )
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
