"""Detection experiment: run DeepMC over the whole corpus (§5.1, §5.3, §5.4).

This is the measurement behind Tables 1, 2, 3 and 8: the static checker is
*actually run* on every corpus program and its warnings are matched against
the registry's ground truth (the reproduction's stand-in for the paper's
manual validation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..checker.report import Report, Warning_
from ..corpus import REGISTRY
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..telemetry.spans import Span
from ..corpus.registry import (
    ALL_CLASSES,
    FRAMEWORK_DISPLAY,
    FRAMEWORK_MODEL,
    BugSpec,
    CorpusProgram,
)


@dataclass
class ProgramOutcome:
    """Checker output vs ground truth for one corpus program."""

    program: CorpusProgram
    warnings: List[Warning_]
    #: warnings matched to a ground-truth site (real or FP)
    matched: List[Tuple[Warning_, BugSpec]]
    unmatched_warnings: List[Warning_]
    missed_bugs: List[BugSpec]

    @property
    def validated(self) -> List[BugSpec]:
        return [b for _w, b in self.matched if b.real]

    @property
    def false_positives(self) -> List[BugSpec]:
        return [b for _w, b in self.matched if not b.real]


@dataclass
class ProgramError:
    """A corpus program whose check did not complete (worker crash,
    analysis exception) — recorded instead of losing the whole run."""

    program: str
    error: str


@dataclass
class DetectionResult:
    """Aggregated outcome across the corpus."""

    outcomes: List[ProgramOutcome] = field(default_factory=list)
    #: programs whose check failed outright (one entry per program)
    errors: List[ProgramError] = field(default_factory=list)
    #: analysis-cache traffic of this run (0/0 when no cache attached)
    cache_hits: int = 0
    cache_misses: int = 0

    # -- aggregate counters -------------------------------------------------
    @property
    def total_warnings(self) -> int:
        return sum(len(o.warnings) for o in self.outcomes)

    @property
    def total_validated(self) -> int:
        return sum(len(o.validated) for o in self.outcomes)

    @property
    def total_false_positives(self) -> int:
        return sum(len(o.false_positives) for o in self.outcomes)

    @property
    def false_positive_rate(self) -> float:
        if not self.total_warnings:
            return 0.0
        return self.total_false_positives / self.total_warnings

    def validated_bugs(self, studied: Optional[bool] = None) -> List[BugSpec]:
        out = []
        for o in self.outcomes:
            for b in o.validated:
                if studied is None or b.studied == studied:
                    out.append(b)
        return sorted(out, key=lambda b: (b.framework, b.file, b.line))

    def missed(self) -> List[BugSpec]:
        return [b for o in self.outcomes for b in o.missed_bugs]

    def unmatched(self) -> List[Warning_]:
        return [w for o in self.outcomes for w in o.unmatched_warnings]

    def matrix(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Measured Table 1: class -> framework -> validated/warnings."""
        out: Dict[str, Dict[str, Dict[str, int]]] = {
            cls: {fw: {"validated": 0, "warnings": 0} for fw in FRAMEWORK_MODEL}
            for cls in ALL_CLASSES
        }
        for o in self.outcomes:
            fw = o.program.framework
            for _w, b in o.matched:
                out[b.bug_class][fw]["warnings"] += 1
                if b.real:
                    out[b.bug_class][fw]["validated"] += 1
        return out


def run_detection(framework: Optional[str] = None,
                  telemetry: Optional[Telemetry] = None,
                  jobs: int = 1,
                  cache: Union["AnalysisCache", str, Path, None] = None,
                  **checker_opts) -> DetectionResult:
    """Run the static checker on every (selected) corpus program.

    ``checker_opts`` are forwarded to :class:`StaticChecker` (and its
    trace collector) — e.g. ``field_sensitive=False`` for the ablation.
    ``telemetry`` (optional) gets one ``corpus.program`` span per program
    plus ``corpus.*`` aggregate counters.

    ``jobs > 1`` fans the per-program checks out across worker processes
    (each program is independent); results come back in registry order,
    so the outcome list — and everything rendered from it — is identical
    to a serial run. A crashed or failing worker contributes a
    :class:`ProgramError` entry instead of aborting the run.

    ``cache`` (an :class:`~repro.parallel.cache.AnalysisCache` or a
    directory path) makes the run incremental: programs whose printed IR
    and rule-set version match a cache entry skip analysis entirely.
    Every program's module is built exactly once per run — the build
    feeds both the cache key and, on a miss, the checker.
    """
    from ..parallel.cache import AnalysisCache

    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    cache_obj: Optional[AnalysisCache]
    if cache is None or isinstance(cache, AnalysisCache):
        cache_obj = cache
    else:
        cache_obj = AnalysisCache(cache)
    programs = REGISTRY.programs(framework)
    result = DetectionResult()
    with tel.span("corpus.detection", framework=framework or "all",
                  jobs=jobs) as top:
        if jobs > 1:
            _run_parallel(programs, jobs, cache_obj, tel, checker_opts,
                          result)
        else:
            _run_serial(programs, cache_obj, telemetry, tel, checker_opts,
                        result)
        top.set("programs", len(result.outcomes))
        top.set("warnings", result.total_warnings)
        if result.errors:
            top.set("errors", len(result.errors))
        if cache_obj is not None:
            top.set("cache_hits", result.cache_hits)
            top.set("cache_misses", result.cache_misses)
    if tel.enabled:
        tel.metrics.counter("corpus.programs").inc(len(result.outcomes))
        tel.metrics.counter("corpus.warnings").inc(result.total_warnings)
        tel.metrics.counter("corpus.validated").inc(result.total_validated)
        tel.metrics.counter("corpus.false_positives").inc(
            result.total_false_positives)
        if result.errors:
            tel.metrics.counter("corpus.errors").inc(len(result.errors))
        tel.event("corpus_detection", framework=framework or "all",
                  programs=len(result.outcomes),
                  warnings=result.total_warnings,
                  validated=result.total_validated,
                  false_positives=result.total_false_positives,
                  errors=len(result.errors),
                  cache_hits=result.cache_hits,
                  cache_misses=result.cache_misses)
    return result


def _run_serial(programs: List[CorpusProgram],
                cache_obj, telemetry: Optional[Telemetry], tel: Telemetry,
                checker_opts: Dict, result: DetectionResult) -> None:
    """In-process corpus walk (``jobs=1``): spans nest naturally and
    events stream straight into the caller's sinks."""
    from ..parallel.cache import check_with_cache

    for program in programs:
        try:
            with tel.span("corpus.program", program=program.name,
                          framework=program.framework) as sp:
                module = program.build()
                checked = check_with_cache(module, cache_obj,
                                           telemetry=telemetry,
                                           **checker_opts)
                sp.set("warnings", len(checked.report))
                if cache_obj is not None:
                    sp.set("cache", "hit" if checked.hit else "miss")
        except Exception as exc:
            result.errors.append(ProgramError(
                program.name, f"{type(exc).__name__}: {exc}"))
            continue
        if cache_obj is not None:
            if checked.hit:
                result.cache_hits += 1
            else:
                result.cache_misses += 1
        result.outcomes.append(_match_ground_truth(program, checked.report))


def _run_parallel(programs: List[CorpusProgram], jobs: int,
                  cache_obj, tel: Telemetry, checker_opts: Dict,
                  result: DetectionResult) -> None:
    """Fan the per-program checks out across a process pool, then merge
    worker spans/metrics back into the parent telemetry."""
    from ..parallel.executor import check_programs

    payloads = check_programs(
        [p.name for p in programs],
        jobs=jobs,
        cache_dir=str(cache_obj.root) if cache_obj is not None else None,
        telemetry=tel.enabled,
        checker_opts=checker_opts,
        executor_telemetry=tel if tel.enabled else None,
    )
    for program, payload in zip(programs, payloads):
        if not payload.get("ok"):
            result.errors.append(ProgramError(
                program.name, payload.get("error", "worker failed")))
            continue
        if payload.get("span"):
            tel.tracer.adopt(Span.from_dict(payload["span"]))
        if payload.get("metrics"):
            tel.metrics.merge(payload["metrics"])
        hit = payload.get("cache_hit")
        if hit is True:
            result.cache_hits += 1
        elif hit is False:
            result.cache_misses += 1
        report = Report.from_dict(payload["report"])
        result.outcomes.append(_match_ground_truth(program, report))


def _match_ground_truth(program: CorpusProgram, report) -> ProgramOutcome:
    """Match one program's warnings against its registry ground truth."""
    warnings = report.warnings()
    by_key = {(b.rule_id, b.file, b.line): b for b in program.bugs}
    matched: List[Tuple[Warning_, BugSpec]] = []
    unmatched: List[Warning_] = []
    seen = set()
    for w in warnings:
        key = (w.rule_id, w.loc.file, w.loc.line)
        bug = by_key.get(key)
        if bug is not None:
            matched.append((w, bug))
            seen.add(key)
        else:
            unmatched.append(w)
    missed = [b for k, b in by_key.items() if k not in seen]
    return ProgramOutcome(program, warnings, matched, unmatched, missed)


def render_table1(result: DetectionResult) -> str:
    """Text rendering in the layout of the paper's Table 1."""
    frameworks = ["pmdk", "nvm_direct", "pmfs", "mnemosyne"]
    header = ["Bug Description"] + [FRAMEWORK_DISPLAY[f] for f in frameworks]
    rows: List[List[str]] = []
    matrix = result.matrix()
    totals = {f: [0, 0] for f in frameworks}
    for cls in ALL_CLASSES:
        row = [cls]
        for f in frameworks:
            cell = matrix[cls][f]
            if cell["warnings"] == 0:
                row.append("-")
            else:
                row.append(f"{cell['validated']}/{cell['warnings']}")
                totals[f][0] += cell["validated"]
                totals[f][1] += cell["warnings"]
        rows.append(row)
    rows.append(
        ["Total"] + [f"{totals[f][0]}/{totals[f][1]}" for f in frameworks]
    )
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
