"""Exception hierarchy for the DeepMC reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without masking genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR: bad types, operands, or structural problems."""


class ParseError(IRError):
    """Raised by the textual IR parser on invalid input."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)


class VerifierError(IRError):
    """Raised by the module verifier when an invariant is violated."""


class AnalysisError(ReproError):
    """Raised by static analyses (CFG, call graph, DSA, traces)."""


class CheckerError(ReproError):
    """Raised by the static/dynamic checkers on misconfiguration."""


class VMError(ReproError):
    """Raised by the IR interpreter on runtime faults."""


class MemoryFault(VMError):
    """Out-of-bounds or use-after-free access in the simulated memory."""


class CrashInjected(VMError):
    """Control-flow exception used to stop execution at a crash point.

    Not an error in the usual sense: the crash tester raises this to
    unwind the interpreter once the designated crash point is reached.
    """


class CorpusError(ReproError):
    """Raised when a corpus program is internally inconsistent."""
