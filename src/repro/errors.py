"""Exception hierarchy for the DeepMC reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without masking genuine programming errors.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR: bad types, operands, or structural problems."""


class ParseError(IRError):
    """Raised by the textual IR parser on invalid input."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)


class VerifierError(IRError):
    """Raised by the module verifier when an invariant is violated."""


class AnalysisError(ReproError):
    """Raised by static analyses (CFG, call graph, DSA, traces)."""


class CheckerError(ReproError):
    """Raised by the static/dynamic checkers on misconfiguration."""


class VMError(ReproError):
    """Raised by the IR interpreter on runtime faults."""


class MemoryFault(VMError):
    """Out-of-bounds or use-after-free access in the simulated memory."""


class CrashInjected(VMError):
    """Control-flow exception used to stop execution at a crash point.

    Not an error in the usual sense: the crash tester raises this to
    unwind the interpreter once the designated crash point is reached.
    """


class CorpusError(ReproError):
    """Raised when a corpus program is internally inconsistent."""


class DeadlineExceeded(ReproError):
    """A cooperative deadline budget ran out before the stage finished.

    Raised by stages that have no meaningful partial result (the static
    checker's phases); stages that *can* degrade — crash-image
    enumeration, image classification — instead return a result
    explicitly marked truncated. ``stage`` names the checkpoint that
    noticed expiry, so a ``deadline_exceeded`` serve response can say
    where the budget went.
    """

    def __init__(self, stage: str, message: str = ""):
        self.stage = stage
        super().__init__(message or f"deadline exceeded during {stage}")


class ServeError(ReproError):
    """Raised by the serve client on a structured error response or an
    unrecoverable transport failure. ``code`` is one of the protocol's
    error codes (:mod:`repro.serve.protocol`); ``retry_after_ms`` is the
    server's backpressure hint when the code is retryable."""

    def __init__(self, code: str, message: str,
                 retry_after_ms: Optional[int] = None,
                 retryable: bool = False):
        self.code = code
        self.retry_after_ms = retry_after_ms
        self.retryable = retryable
        super().__init__(f"{code}: {message}")
