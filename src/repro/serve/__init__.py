"""``deepmc serve``: a resilient long-lived analysis daemon.

The serve subsystem turns the one-shot pipeline into a warm service:
a JSON-RPC-over-socket daemon (:mod:`~repro.serve.daemon`) that routes
``check``/``crashsim``/``litmus``/``fuzz`` requests through the shared
process-pool executor against a warm, immutable artifact store
(:mod:`~repro.serve.artifacts`), with bounded admission + backpressure,
cooperative per-request deadlines, supervisor-driven worker-pool
recovery, per-session suppression state (:mod:`~repro.serve.session`),
and drain-based graceful shutdown. :mod:`~repro.serve.client` is the
retrying client; :mod:`~repro.serve.chaos` proves the whole stack keeps
its byte-identical-verdict contract under injected faults.

See docs/SERVE.md for the protocol and the failure-semantics matrix.
"""

from .artifacts import ArtifactStore, is_complete
from .client import RetryPolicy, ServeClient, connect
from .daemon import DeepMCServer, ServeConfig
from .protocol import (
    ERROR_CODES,
    HEAVY_METHODS,
    HELLO_SCHEMA,
    IDEMPOTENT_METHODS,
    LIGHT_METHODS,
    METHODS,
    ProtocolError,
    Request,
    parse_address,
)
from .session import SessionState

__all__ = [
    "ArtifactStore",
    "DeepMCServer",
    "ERROR_CODES",
    "HEAVY_METHODS",
    "HELLO_SCHEMA",
    "IDEMPOTENT_METHODS",
    "LIGHT_METHODS",
    "METHODS",
    "ProtocolError",
    "Request",
    "RetryPolicy",
    "ServeClient",
    "ServeConfig",
    "SessionState",
    "connect",
    "is_complete",
    "parse_address",
]
