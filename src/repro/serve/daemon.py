"""The ``deepmc serve`` daemon: a resilient, long-lived analysis server.

Architecture (one process, a few threads, one worker pool)::

    accept thread ──► connection threads ──► admission queue ──► dispatcher
                         │       ▲                                  │
                         │       └── responses (per-conn lock) ◄────┤
                         │                                          ▼
                         └─ light methods, warm hits      run_tasks worker pool

* **Connection threads** parse frames, answer light methods (``ping``,
  ``health``, ``ready``, ``stats``, ``suppress``, ``methods``) and *warm*
  heavy requests (artifact-store hits) inline, and hand cold heavy
  requests to the admission queue. A warm hit never consumes an admission
  slot, so a hot working set stays responsive under overload.
* **Admission** is a bounded queue: at most ``max_inflight`` cold
  requests may be queued + executing. Beyond that the request is refused
  *immediately* with a structured ``overloaded`` error carrying a
  ``retry_after_ms`` hint — never silently dropped, never head-of-line
  blocked behind work that cannot be admitted.
* **The dispatcher** drains admitted requests in batches and runs them
  through the shared process-pool executor
  (:func:`repro.parallel.executor.run_tasks`) — the same machinery behind
  ``deepmc corpus --jobs N`` — inheriting its supervisor behaviour: a
  worker that crashes breaks only its pool generation (the pool is
  rebuilt with exponential backoff and the unfinished *sibling* requests
  are requeued, never dropped), a worker that hangs trips the progress
  deadline, and a request out of retries falls back to in-process
  execution. With ``jobs <= 1`` requests execute inline in the daemon
  (fault injection is disabled on that path by construction).
* **Deadlines** are cooperative budgets threaded *into* the analysis
  stages: the static checker raises ``DeadlineExceeded`` at its next
  checkpoint (→ a structured ``deadline_exceeded`` error naming the
  stage), crash simulation returns everything enumerated so far marked
  ``truncated`` + ``deadline_exceeded`` (→ a *successful* response whose
  result says it is partial). Each attempt gets the budget remaining at
  dispatch time.
* **Drain** (graceful shutdown): new heavy requests are refused with
  retryable ``shutting_down``; every already-admitted request completes
  and its response is flushed before sockets close. Zero in-flight
  requests are ever lost to a SIGTERM.

Telemetry is counters + events only — the daemon never opens tracer
spans from its many threads (the tracer is single-threaded by design).
"""

from __future__ import annotations

import os
import socket
import threading
import traceback
from collections import deque
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Dict, List, Optional, Tuple

from ..deadline import Deadline
from ..errors import DeadlineExceeded, ReproError
from ..parallel.executor import ExecutorPolicy, run_tasks
from ..telemetry import Telemetry
from . import methods as serve_methods
from .artifacts import ArtifactStore
from .protocol import (
    HEAVY_METHODS,
    HELLO_SCHEMA,
    IDEMPOTENT_METHODS,
    LIGHT_METHODS,
    METHODS,
    ProtocolError,
    Request,
    encode,
    failure,
    success,
)
from .session import SessionState, parse_suppress_params

#: floor of the overload backpressure hint
MIN_RETRY_AFTER_MS = 50

#: per-queued-request increment of the backpressure hint: deeper queue,
#: longer hint, so colliding clients spread out instead of re-stampeding
RETRY_AFTER_STEP_MS = 150


@dataclass
class ServeConfig:
    """Everything the daemon needs to run (CLI flags map 1:1)."""

    socket_path: Optional[str] = None
    port: Optional[int] = None
    jobs: int = 1
    #: admission bound: max cold requests queued + executing
    max_inflight: int = 8
    #: default per-request deadline budget (seconds); None = unbounded.
    #: A request may lower/raise its own via ``params.timeout_s``.
    request_timeout_s: Optional[float] = 30.0
    #: progress deadline of the worker pool (hung-worker detector)
    pool_timeout_s: Optional[float] = 10.0
    #: worker-side analysis cache directory (None = no cache)
    cache_dir: Optional[str] = None
    #: directory of .nvmir files to watch and keep pre-checked
    watch_dir: Optional[str] = None
    watch_poll_s: float = 2.0
    #: corpus programs to pre-check before reporting ready
    warm_programs: Tuple[str, ...] = ()
    #: retry/backoff/deadline knobs of the worker pool
    executor_policy: Optional[ExecutorPolicy] = None
    #: chaos only: deterministic executor-fault plan (jobs > 1 only)
    fault_plan: Any = None


@dataclass
class _Pending:
    """One admitted cold request awaiting dispatch."""

    seq: int
    request: Request
    params: Dict[str, Any]  # normalized
    key: str
    conn: "_Connection"
    deadline: Deadline
    admitted_at: float = field(default_factory=monotonic)


class _Connection:
    """One client connection: a socket, a write lock, a session."""

    def __init__(self, sock: socket.socket, server: "DeepMCServer"):
        self.sock = sock
        self.server = server
        self.session = SessionState()
        self._wlock = threading.Lock()
        self.closed = False

    def send(self, doc: Dict[str, Any]) -> bool:
        """Serialize one response; False when the peer is gone (the
        daemon must survive any client vanishing mid-request)."""
        try:
            with self._wlock:
                if self.closed:
                    return False
                self.sock.sendall(encode(doc))
            return True
        except OSError:
            self.server.telemetry.metrics.counter(
                "serve.orphaned_responses").inc()
            return False

    def close(self) -> None:
        with self._wlock:
            if self.closed:
                return
            self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


# -- worker entry point -----------------------------------------------------

def _serve_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Module-level (picklable) worker entry point for one heavy request.

    Maps every outcome to a structured payload: a result document, a
    typed protocol error (``error_code``), or a traceback for genuine
    infrastructure failures. Chaos executor faults apply only under a
    real pool (``_attempt`` stamped, not the in-process fallback) — the
    same contract as the chaos corpus task.
    """
    from ..faults.injector import apply_executor_fault

    if "_attempt" in task:
        apply_executor_fault(task)
    name = task["name"]
    deadline_s = task.get("deadline_s")
    deadline = Deadline(deadline_s) if deadline_s is not None else None
    try:
        doc = serve_methods.run_method(task["method"], task["params"],
                                       deadline=deadline,
                                       cache_dir=task.get("cache_dir"))
        return {"name": name, "ok": True, "result": doc}
    except DeadlineExceeded as exc:
        return {"name": name, "ok": False,
                "error_code": "deadline_exceeded",
                "stage": exc.stage, "error": str(exc)}
    except ReproError as exc:
        # bad inputs surface as ReproError (unknown program/test/model)
        return {"name": name, "ok": False, "error_code": "bad_request",
                "error": f"{type(exc).__name__}: {exc}"}
    except Exception:
        return {"name": name, "ok": False,
                "error": traceback.format_exc()}


# -- the server -------------------------------------------------------------

class DeepMCServer:
    """See the module docstring for the architecture."""

    def __init__(self, config: ServeConfig,
                 telemetry: Optional[Telemetry] = None):
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.store = ArtifactStore()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conns: List[_Connection] = []
        self._conns_lock = threading.Lock()
        #: admission state, all under one condition
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._executing = 0
        self._draining = False
        self._stopping = False
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._seq = 0
        self.address: Optional[Tuple[str, Any]] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> Tuple[str, Any]:
        """Bind, warm, and go ready; returns the bound address (for
        ``--port 0`` the kernel-assigned port)."""
        cfg = self.config
        if (cfg.socket_path is None) == (cfg.port is None):
            raise ProtocolError(
                "exactly one of socket_path/port is required")
        if cfg.socket_path is not None:
            if os.path.exists(cfg.socket_path):
                os.unlink(cfg.socket_path)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(cfg.socket_path)
            self.address = ("unix", cfg.socket_path)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", cfg.port))
            self.address = ("tcp", sock.getsockname())
        sock.listen(64)
        sock.settimeout(0.2)
        self._listener = sock

        for name, target in (("dispatcher", self._dispatch_loop),
                             ("acceptor", self._accept_loop)):
            t = threading.Thread(target=target, name=f"serve-{name}",
                                 daemon=True)
            t.start()
            self._threads.append(t)
        if cfg.watch_dir:
            t = threading.Thread(target=self._watch_loop,
                                 name="serve-watch", daemon=True)
            t.start()
            self._threads.append(t)

        for program in cfg.warm_programs:
            params = serve_methods.normalize("check", {"program": program})
            doc = serve_methods.run_method("check", params,
                                           cache_dir=cfg.cache_dir)
            self.store.put(serve_methods.method_key("check", params), doc)
        self._ready.set()
        self.telemetry.event("serve_started",
                             address=str(self.address),
                             jobs=cfg.jobs,
                             max_inflight=cfg.max_inflight)
        return self.address

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon is fully shut down."""
        return self._stopped.wait(timeout)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> bool:
        """Stop the daemon. With ``drain`` every admitted request
        completes and its response is flushed before sockets close;
        returns False when the drain ran out of ``timeout``."""
        deadline = Deadline(timeout)
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            drained = True
            if drain:
                while self._queue or self._executing:
                    remaining = deadline.remaining()
                    if remaining <= 0:
                        drained = False
                        break
                    self._cond.wait(None if remaining == float("inf")
                                    else min(remaining, 0.5))
            self._stopping = True
            self._cond.notify_all()
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()
        for t in list(self._threads):
            if t is not threading.current_thread():
                t.join(timeout=5.0)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self.config.socket_path and os.path.exists(
                self.config.socket_path):
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
        self.telemetry.event("serve_stopped", drained=drained)
        self._stopped.set()
        return drained

    # -- accept / read ------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            with self._cond:
                if self._stopping:
                    return
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn = _Connection(sock, self)
            with self._conns_lock:
                self._conns.append(conn)
            t = threading.Thread(target=self._conn_loop, args=(conn,),
                                 name="serve-conn", daemon=True)
            t.start()
            self._threads.append(t)

    def _conn_loop(self, conn: _Connection) -> None:
        conn.send({"schema": HELLO_SCHEMA, "ready": self._ready.is_set()})
        try:
            reader = conn.sock.makefile("r", encoding="utf-8",
                                        errors="replace")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                self._handle_line(conn, line)
        except (OSError, ValueError):
            pass
        finally:
            conn.close()
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _handle_line(self, conn: _Connection, line: str) -> None:
        metrics = self.telemetry.metrics
        try:
            request = Request.parse(line)
        except ProtocolError as exc:
            metrics.counter("serve.bad_requests").inc()
            conn.send(failure(None, "bad_request", str(exc)))
            return
        metrics.counter("serve.requests").inc()
        method = request.method
        if method not in METHODS:
            metrics.counter("serve.bad_requests").inc()
            conn.send(failure(request.id, "method_not_found",
                              f"unknown method {method!r} "
                              f"(choose from {', '.join(METHODS)})"))
            return
        if method in LIGHT_METHODS:
            conn.send(self._light(conn, request))
            return
        self._heavy(conn, request)

    # -- light methods ------------------------------------------------------
    def _light(self, conn: _Connection, request: Request) -> Dict[str, Any]:
        method, params = request.method, request.params
        try:
            if method == "ping":
                return success(request.id, {"pong": True})
            if method == "methods":
                return success(request.id, {
                    "methods": list(METHODS),
                    "idempotent": list(IDEMPOTENT_METHODS),
                })
            if method == "ready":
                return success(request.id,
                               {"ready": self._ready.is_set()
                                and not self._draining})
            if method == "health":
                with self._cond:
                    queued, executing = len(self._queue), self._executing
                    status = "draining" if self._draining else "ok"
                return success(request.id, {
                    "status": status,
                    "queued": queued,
                    "executing": executing,
                    "max_inflight": self.config.max_inflight,
                    "store": self.store.stats(),
                })
            if method == "stats":
                counters = self.telemetry.metrics.snapshot()
                return success(request.id, {
                    "store": self.store.stats(),
                    "counters": {k: v for k, v in sorted(counters.items())
                                 if k.startswith(("serve.", "executor.",
                                                  "cache."))},
                    "session": {
                        "id": conn.session.session_id,
                        "suppressions":
                            conn.session.suppression_count(),
                    },
                })
            # suppress
            rule, file, line, reason = parse_suppress_params(params)
            added = conn.session.suppress(rule, file, line, reason)
            return success(request.id, {
                "added": added,
                "suppressions": conn.session.suppression_count(),
            })
        except ValueError as exc:
            self.telemetry.metrics.counter("serve.bad_requests").inc()
            return failure(request.id, "bad_request", str(exc))

    # -- heavy methods ------------------------------------------------------
    def _heavy(self, conn: _Connection, request: Request) -> None:
        metrics = self.telemetry.metrics
        params = dict(request.params)
        timeout_s = params.pop("timeout_s", self.config.request_timeout_s)
        if timeout_s is not None and (
                not isinstance(timeout_s, (int, float))
                or isinstance(timeout_s, bool) or timeout_s <= 0):
            metrics.counter("serve.bad_requests").inc()
            conn.send(failure(request.id, "bad_request",
                              "'timeout_s' must be a positive number"))
            return
        try:
            normalized = serve_methods.normalize(request.method, params)
        except ValueError as exc:
            metrics.counter("serve.bad_requests").inc()
            conn.send(failure(request.id, "bad_request", str(exc)))
            return
        key = serve_methods.method_key(request.method, normalized)

        # Warm path: answered on the connection thread, outside the
        # admission bound — a hot working set stays live under overload.
        warm = self.store.get(key)
        if warm is not None:
            metrics.counter("serve.warm_hits").inc()
            if request.method == "check":
                warm = conn.session.filter_check_doc(warm)
            conn.send(success(request.id, warm, meta={"served": "warm"}))
            return
        metrics.counter("serve.cold_misses").inc()

        with self._cond:
            if self._draining:
                metrics.counter("serve.shutting_down").inc()
                response = failure(request.id, "shutting_down",
                                   "daemon is draining; retry elsewhere "
                                   "or later",
                                   retry_after_ms=MIN_RETRY_AFTER_MS)
            elif (len(self._queue) + self._executing
                    >= self.config.max_inflight):
                metrics.counter("serve.overloaded").inc()
                depth = len(self._queue) + self._executing
                response = failure(
                    request.id, "overloaded",
                    f"admission queue full "
                    f"({depth}/{self.config.max_inflight} in flight)",
                    retry_after_ms=MIN_RETRY_AFTER_MS
                    + RETRY_AFTER_STEP_MS * depth)
            else:
                self._seq += 1
                self._queue.append(_Pending(
                    seq=self._seq, request=request, params=normalized,
                    key=key, conn=conn, deadline=Deadline(timeout_s)))
                self._cond.notify_all()
                return
        conn.send(response)

    # -- dispatch -----------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait(0.5)
                if self._stopping and not self._queue:
                    return
                batch: List[_Pending] = []
                while self._queue:
                    batch.append(self._queue.popleft())
                self._executing += len(batch)
            try:
                self._execute(batch)
            finally:
                with self._cond:
                    self._executing -= len(batch)
                    self._cond.notify_all()

    def _execute(self, batch: List[_Pending]) -> None:
        cfg = self.config
        tasks: List[Dict[str, Any]] = []
        for preq in batch:
            remaining = preq.deadline.remaining()
            task: Dict[str, Any] = {
                "name": f"req{preq.seq}",
                "method": preq.request.method,
                "params": preq.params,
                "deadline_s": (None if remaining == float("inf")
                               else max(0.0, remaining)),
                "cache_dir": cfg.cache_dir,
            }
            if cfg.fault_plan is not None and cfg.jobs > 1:
                # Fault decisions key on the request *content*, so the
                # same request draws the same fault under any client
                # interleaving — the byte-identical invariant depends
                # on it.
                fault = cfg.fault_plan.executor_fault(preq.key)
                if fault is not None:
                    task["fault"] = fault
            tasks.append(task)

        if cfg.jobs > 1 and len(tasks) > 0:
            policy = cfg.executor_policy or ExecutorPolicy(
                timeout=cfg.pool_timeout_s)
            payloads = run_tasks(_serve_task, tasks,
                                 jobs=min(cfg.jobs, len(tasks)),
                                 policy=policy,
                                 telemetry=self.telemetry)
            served = "pool"
        else:
            payloads = [_serve_task(dict(t, _in_process=True))
                        for t in tasks]
            served = "inline"

        for preq, payload in zip(batch, payloads):
            self._complete(preq, payload, served)

    def _complete(self, preq: _Pending, payload: Dict[str, Any],
                  served: str) -> None:
        metrics = self.telemetry.metrics
        rid = preq.request.id
        if payload.get("ok"):
            doc = payload["result"]
            self.store.put(preq.key, doc)  # refuses deadline partials
            if doc.get("deadline_exceeded") or any(
                    isinstance(v, list) and any(
                        isinstance(e, dict) and e.get("deadline_exceeded")
                        for e in v)
                    for v in doc.values()):
                metrics.counter("serve.degraded").inc()
            if preq.request.method == "check":
                doc = preq.conn.session.filter_check_doc(doc)
            preq.conn.send(success(rid, doc, meta={"served": served}))
            return
        code = payload.get("error_code")
        message = (payload.get("error") or "").strip()
        if code == "deadline_exceeded":
            metrics.counter("serve.deadline_exceeded").inc()
            preq.conn.send(failure(rid, code, message,
                                   stage=payload.get("stage")))
        elif code == "bad_request":
            metrics.counter("serve.bad_requests").inc()
            preq.conn.send(failure(rid, code, message))
        else:
            metrics.counter("serve.internal_errors").inc()
            last = message.splitlines()[-1] if message else "task failed"
            preq.conn.send(failure(rid, "internal", last))

    # -- watch --------------------------------------------------------------
    def _watch_loop(self) -> None:
        """Keep watched ``.nvmir`` files pre-checked: poll mtimes, and on
        any change drop the store (entries derived from stale sources
        must not survive) and re-warm the changed files."""
        seen: Dict[str, float] = {}
        first = True
        while not self._stopped.is_set():
            with self._cond:
                if self._stopping:
                    return
            try:
                files = sorted(
                    os.path.join(self.config.watch_dir, f)
                    for f in os.listdir(self.config.watch_dir)
                    if f.endswith(".nvmir"))
            except OSError:
                files = []
            current = {}
            for path in files:
                try:
                    current[path] = os.stat(path).st_mtime
                except OSError:
                    continue
            changed = [p for p, m in current.items() if seen.get(p) != m]
            if changed and not first:
                self.store.clear()
                self.telemetry.metrics.counter(
                    "serve.watch_refreshes").inc()
            for path in changed:
                try:
                    params = serve_methods.normalize("check",
                                                     {"file": path})
                    doc = serve_methods.run_method(
                        "check", params, cache_dir=self.config.cache_dir)
                    self.store.put(
                        serve_methods.method_key("check", params), doc)
                except Exception:
                    # an unparsable file under watch is the client's
                    # problem at request time, not the daemon's at poll
                    # time
                    pass
            seen = current
            first = False
            self._stopped.wait(self.config.watch_poll_s)


__all__ = ["DeepMCServer", "ServeConfig", "HEAVY_METHODS"]
