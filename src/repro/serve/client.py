"""Client for the ``deepmc serve`` daemon.

:class:`ServeClient` is both the Python API and the engine behind
``deepmc client``. It speaks the newline-JSON protocol, correlates
responses by id, and implements the client half of the resilience
contract:

* **retry with jittered exponential backoff** — but only for requests
  that are safe to resubmit: the method must be idempotent
  (:data:`~repro.serve.protocol.IDEMPOTENT_METHODS`) *and* the failure
  transient (a retryable error response, or a transport failure). A
  non-idempotent method (``suppress``) is never retried after an
  ambiguous transport failure: the first send may have landed.
* **backpressure cooperation** — an ``overloaded`` response carries the
  server's ``retry_after_ms`` hint; the client waits at least that long
  (max of hint and its own backoff), so a thundering herd spreads out
  instead of re-stampeding the admission queue.
* **deterministic jitter** — the backoff jitter comes from a seeded
  generator, so tests and chaos campaigns replay byte-identically.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ServeError
from .protocol import (
    IDEMPOTENT_METHODS,
    ProtocolError,
    decode_response,
    encode,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Client retry knobs. ``attempts`` counts total tries (1 = never
    retry); jitter multiplies the backoff by a uniform draw in
    [1-jitter, 1+jitter]."""

    attempts: int = 4
    base_backoff_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def backoff_s(self, attempt: int, rng: random.Random,
                  retry_after_ms: Optional[int] = None) -> float:
        """Sleep before the (1-based) ``attempt``-th retry."""
        backoff = min(self.base_backoff_s * (2 ** (attempt - 1)),
                      self.backoff_cap_s)
        backoff *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        if retry_after_ms is not None:
            backoff = max(backoff, retry_after_ms / 1000.0)
        return max(backoff, 0.0)


class ServeClient:
    """One logical client; reconnects transparently across retries."""

    def __init__(self, address: Tuple[str, Any],
                 retry: Optional[RetryPolicy] = None,
                 connect_timeout_s: float = 5.0):
        self.address = address
        self.retry = retry if retry is not None else RetryPolicy()
        self.connect_timeout_s = connect_timeout_s
        self._rng = random.Random(self.retry.seed)
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0

    # -- transport ----------------------------------------------------------
    def _connect(self) -> None:
        kind, target = self.address
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        elif kind == "tcp":
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        else:
            raise ServeError("bad_request", f"unknown address kind {kind!r}")
        sock.settimeout(self.connect_timeout_s)
        sock.connect(target)
        sock.settimeout(None)
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8",
                                     errors="replace")
        # the hello banner is not a response frame; parse it raw
        import json

        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed during handshake")
        try:
            hello = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"bad hello frame: {exc}") from None
        if not isinstance(hello, dict) or "schema" not in hello:
            raise ProtocolError("server did not send a hello frame")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._reader = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _read_doc(self) -> Dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_response(line)

    def _send_and_wait(self, rid: int, method: str,
                       params: Dict[str, Any],
                       timeout_s: Optional[float]) -> Dict[str, Any]:
        if self._sock is None:
            self._connect()
        request: Dict[str, Any] = {"id": rid, "method": method,
                                   "params": params}
        self._sock.sendall(encode(request))
        if timeout_s is not None:
            self._sock.settimeout(timeout_s + 5.0)
        try:
            while True:
                doc = self._read_doc()
                if doc.get("id") == rid:
                    return doc
                # a stale response from an abandoned attempt: skip it
        finally:
            if timeout_s is not None:
                self._sock.settimeout(None)

    # -- API ----------------------------------------------------------------
    def call(self, method: str, params: Optional[Dict[str, Any]] = None,
             timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Invoke one method; returns the full response document
        (``result`` under ``"result"``, provenance under ``"meta"``).
        Raises :class:`~repro.errors.ServeError` when the final attempt
        fails."""
        params = dict(params or {})
        if timeout_s is not None:
            params["timeout_s"] = timeout_s
        retryable_method = method in IDEMPOTENT_METHODS
        last_error: Optional[ServeError] = None
        attempts = max(self.retry.attempts, 1)
        for attempt in range(1, attempts + 1):
            self._next_id += 1
            rid = self._next_id
            retry_after_ms = None
            try:
                doc = self._send_and_wait(rid, method, params, timeout_s)
                if doc.get("ok"):
                    return doc
                err = doc["error"]
                last_error = ServeError(
                    err["code"], err.get("message", ""),
                    retry_after_ms=err.get("retry_after_ms"),
                    retryable=bool(err.get("retryable")))
                if not (last_error.retryable and retryable_method):
                    raise last_error
                retry_after_ms = last_error.retry_after_ms
            except (OSError, ProtocolError) as exc:
                # Transport failure: the connection is unusable; retrying
                # reconnects. Safe only for idempotent methods — the
                # request may already have executed.
                self.close()
                last_error = ServeError(
                    "internal", f"transport failure: {exc}",
                    retryable=True)
                if not retryable_method:
                    raise last_error from None
            if attempt < attempts:
                time.sleep(self.retry.backoff_s(attempt, self._rng,
                                                retry_after_ms))
        assert last_error is not None
        raise last_error

    def result(self, method: str,
               params: Optional[Dict[str, Any]] = None,
               timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Like :meth:`call`, but returns just the ``result`` document."""
        return self.call(method, params, timeout_s)["result"]

    # -- convenience --------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.result("ping").get("pong"))

    def wait_ready(self, timeout_s: float = 10.0,
                   poll_s: float = 0.05) -> bool:
        """Poll ``ready`` until true or the timeout elapses (daemon
        startup races in scripts and tests)."""
        end = time.monotonic() + timeout_s
        while time.monotonic() < end:
            try:
                if self.result("ready").get("ready"):
                    return True
            except (ServeError, OSError):
                self.close()
            time.sleep(poll_s)
        return False


def connect(socket_path: Optional[str] = None,
            port: Optional[int] = None,
            retry: Optional[RetryPolicy] = None) -> ServeClient:
    """Build a client from the CLI-style ``--socket``/``--port`` pair."""
    from .protocol import parse_address

    return ServeClient(parse_address(socket_path, port), retry=retry)
