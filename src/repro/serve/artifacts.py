"""The daemon's warm artifact store.

A long-lived daemon amortizes analysis cost across requests: the first
``check pmdk_hashmap`` pays for verify/DSA/traces/rules, every later one
is a dictionary lookup. The store is the *shared, immutable* half of the
daemon's state — per-session mutation (warning suppressions) lives in
:class:`~repro.serve.session.SessionState` and is applied to a *copy* of
the stored document on the way out, never written back.

Three properties matter for correctness under concurrency and faults:

* **immutability** — ``get`` returns a deep copy, so no caller (not the
  suppression filter, not a buggy handler) can corrupt the shared entry;
* **single-flight** — when N requests race on a cold key, one computes
  and the rest wait on its in-progress marker instead of burning N
  worker slots on identical work;
* **complete-only promotion** — a result produced under a deadline cut
  (``truncated`` / ``deadline_exceeded``) is returned to its requester
  but *never* stored: a warm hit must always be the full answer, or the
  daemon would keep serving a partial forever after one slow request.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable, Dict, Optional, Tuple


def is_complete(doc: Dict[str, Any]) -> bool:
    """True when ``doc`` is safe to promote: no *deadline* partial
    anywhere in the top-level result or its per-program entries.

    Only ``deadline_exceeded`` blocks promotion. Plain ``truncated``
    (the ``max_states`` budget) is a pure function of the request params
    — the same request always truncates the same way — so those
    documents are as cacheable as complete ones.
    """

    def cut(d: Any) -> bool:
        return isinstance(d, dict) and bool(d.get("deadline_exceeded"))

    if cut(doc):
        return False
    for value in doc.values():
        if cut(value):
            return False
        if isinstance(value, list) and any(cut(v) for v in value):
            return False
    return True


class ArtifactStore:
    """Thread-safe, single-flight memo of deterministic result documents."""

    def __init__(self, max_entries: int = 1024):
        self._lock = threading.Lock()
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._inflight: Dict[str, threading.Event] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            doc = self._entries.get(key)
            if doc is None:
                self.misses += 1
                return None
            self.hits += 1
            return copy.deepcopy(doc)

    def put(self, key: str, doc: Dict[str, Any]) -> bool:
        """Promote one document; refuses partials and respects the entry
        cap (the store never evicts — a serve corpus is finite — it just
        stops promoting, which only costs recomputation)."""
        if not is_complete(doc):
            return False
        with self._lock:
            if key not in self._entries and \
                    len(self._entries) >= self._max_entries:
                return False
            self._entries[key] = copy.deepcopy(doc)
            return True

    def get_or_compute(
        self, key: str, compute: Callable[[], Dict[str, Any]],
    ) -> Tuple[Dict[str, Any], bool]:
        """Return ``(doc, warm)``; on a cold key, exactly one caller runs
        ``compute`` while racers block on its completion.

        A failed or partial compute releases the waiters to try again
        themselves (each then becomes the new single flight) — an
        exception must never wedge a key forever.
        """
        while True:
            with self._lock:
                doc = self._entries.get(key)
                if doc is not None:
                    self.hits += 1
                    return copy.deepcopy(doc), True
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
                    self.misses += 1
                    break
            waiter.wait()
        try:
            doc = compute()
            self.put(key, doc)
            return doc, False
        finally:
            with self._lock:
                self._inflight.pop(key).set()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses}

    def clear(self) -> int:
        """Drop every entry (the ``--watch`` refresh path); returns how
        many were dropped."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            return n
