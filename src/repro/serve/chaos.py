"""The chaos campaign's ``serve`` layer.

Extends the PR-4 fault campaigns to the daemon: one phase starts a real
:class:`~repro.serve.daemon.DeepMCServer` (unix socket, worker pool,
pre-corrupted analysis cache, seeded executor-fault plan), drives it
from several concurrent clients issuing a mixed-method request schedule,
and injects *socket* faults on the client side — a seeded subset of
requests is sent on a connection that is then torn down before the
response is read, forcing reconnect + idempotent retry.

**Invariant (d): a faulted multi-client serve session returns verdicts
byte-identical to one-shot CLI runs.** Every successful response's
``result`` document must equal the document the corresponding one-shot
command produces (same code path as ``--format json``), computed
serially and fault-free as the baseline. Worker crashes, hangs, cache
corruption, dropped connections, warm-vs-cold serving, and client
interleaving may change *latency* and *meta*, never a byte of
``result``.

Requests that can fail legitimately under chaos (``overloaded`` after
retries run out) are tolerated only with the codes the protocol
promises; a wrong or missing verdict, a torn response, or a daemon death
is a violation.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ServeError
from ..faults.injector import corrupt_cache_entries
from ..faults.plan import FaultPlan
from ..telemetry import Telemetry
from .client import RetryPolicy, ServeClient
from .daemon import DeepMCServer, ServeConfig
from . import methods as serve_methods

#: corpus programs used by the serve phase's check requests — a small
#: cross-framework slice so the phase stays CI-friendly
DEFAULT_SERVE_PROGRAMS = (
    "pmdk_hashmap",
    "pmdk_btree_map",
    "pmfs_journal",
    "mnemosyne_phlog",
    "nvmdirect_locks",
)

#: probability a given (client, request) draws a client-side socket fault
SOCKET_FAULT_RATE = 0.25


def build_schedule(plan: FaultPlan,
                   programs: Sequence[str],
                   clients: int,
                   requests_per_client: int) -> List[List[Tuple[str, Dict]]]:
    """The per-client request schedules: deterministic mixed-method
    traffic derived from the plan's seed. Every client's list mixes
    ``check`` (the bulk), one ``crashsim``, and one ``litmus``."""
    mixed: List[Tuple[str, Dict[str, Any]]] = [
        ("check", {"program": name}) for name in programs
    ]
    mixed.append(("crashsim",
                  {"programs": [programs[0]], "max_states": 256}))
    mixed.append(("litmus", {"tests": ["store-flush-fence"],
                             "max_states": 256}))
    schedules = []
    for c in range(clients):
        ordered = plan.order(mixed, "serve.schedule", c)
        schedules.append(list(ordered[:requests_per_client]))
    return schedules


def baseline_docs(schedules: Sequence[Sequence[Tuple[str, Dict]]]
                  ) -> Dict[str, Dict[str, Any]]:
    """One-shot reference results, keyed like the artifact store: the
    same ``run_method`` code path the CLI's ``--format json`` uses,
    executed serially with no daemon, no pool, no faults."""
    docs: Dict[str, Dict[str, Any]] = {}
    for schedule in schedules:
        for method, params in schedule:
            normalized = serve_methods.normalize(method, dict(params))
            key = serve_methods.method_key(method, normalized)
            if key not in docs:
                docs[key] = serve_methods.run_method(method, normalized)
    return docs


class _FaultyClient:
    """A client wrapper that injects seeded socket faults: before a
    scheduled request it opens a throwaway connection, sends the request,
    and slams the connection shut without reading the response — then
    issues the real (retried, idempotent) request on its main client."""

    def __init__(self, address, plan: FaultPlan, client_index: int):
        self.plan = plan
        self.client_index = client_index
        self.client = ServeClient(
            address,
            retry=RetryPolicy(attempts=6, base_backoff_s=0.02,
                              seed=plan.seed * 1000 + client_index))

    def call(self, index: int, method: str,
             params: Dict[str, Any]) -> Dict[str, Any]:
        if self.plan.decide(SOCKET_FAULT_RATE, "serve.socket",
                            self.client_index, index):
            self._drop_mid_request(method, params)
        return self.client.call(method, params)

    def _drop_mid_request(self, method: str,
                          params: Dict[str, Any]) -> None:
        from .protocol import encode

        try:
            victim = ServeClient(self.client.address)
            victim._connect()
            victim._sock.sendall(encode(
                {"id": 1, "method": method, "params": params}))
            # abandon without reading: the daemon's response hits a dead
            # socket (serve.orphaned_responses) and must not wedge it
            victim.close()
        except OSError:
            pass

    def close(self) -> None:
        self.client.close()


def run_serve_phase(
    plan: FaultPlan,
    programs: Sequence[str] = DEFAULT_SERVE_PROGRAMS,
    clients: int = 4,
    requests_per_client: int = 6,
    jobs: int = 2,
    deadline_s: float = 10.0,
    telemetry: Optional[Telemetry] = None,
    workdir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one seed's serve phase; returns the phase summary dict with a
    ``violations`` list (empty = invariant held)."""
    tel = telemetry if telemetry is not None else Telemetry(enabled=False)
    schedules = build_schedule(plan, programs, clients, requests_per_client)
    baseline = baseline_docs(schedules)

    owned = workdir is None
    root = Path(workdir) if workdir else Path(
        tempfile.mkdtemp(prefix="deepmc-serve-chaos-"))
    violations: List[Dict[str, Any]] = []
    refused = 0
    compared = 0
    corrupted = 0
    try:
        from ..parallel.cache import AnalysisCache

        cache_dir = root / "cache"
        cache_dir.mkdir(parents=True, exist_ok=True)
        # warm the cache once so there are entries to corrupt, then
        # damage a seeded subset — workers must survive every kind
        for method, params in (s for sched in schedules for s in sched):
            if method == "check" and "program" in params:
                normalized = serve_methods.normalize("check", dict(params))
                serve_methods.run_check(normalized,
                                        cache_dir=str(cache_dir))
        corrupted = corrupt_cache_entries(AnalysisCache(cache_dir), plan,
                                          telemetry=tel)

        config = ServeConfig(
            socket_path=str(root / "serve.sock"),
            jobs=jobs,
            max_inflight=max(clients * 2, 8),
            request_timeout_s=60.0,
            pool_timeout_s=deadline_s,
            cache_dir=str(cache_dir),
            fault_plan=plan,
        )
        server = DeepMCServer(config, telemetry=tel)
        address = server.start()

        results: List[List[Optional[Dict[str, Any]]]] = [
            [None] * len(s) for s in schedules]
        errors: List[Dict[str, Any]] = []

        def drive(ci: int) -> None:
            fc = _FaultyClient(address, plan, ci)
            try:
                for i, (method, params) in enumerate(schedules[ci]):
                    try:
                        results[ci][i] = fc.call(i, method, dict(params))
                    except ServeError as exc:
                        errors.append({"client": ci, "index": i,
                                       "code": exc.code,
                                       "message": str(exc)})
            finally:
                fc.close()

        threads = [threading.Thread(target=drive, args=(ci,), daemon=True)
                   for ci in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        alive = [t for t in threads if t.is_alive()]
        if alive:
            violations.append({
                "phase": "serve",
                "detail": f"{len(alive)} client(s) wedged after 120s",
            })
        drained = server.shutdown(drain=True, timeout=60.0)
        if not drained:
            violations.append({"phase": "serve",
                               "detail": "daemon failed to drain"})

        for ci, schedule in enumerate(schedules):
            for i, (method, params) in enumerate(schedule):
                doc = results[ci][i]
                if doc is None:
                    continue  # recorded in errors; judged below
                normalized = serve_methods.normalize(method, dict(params))
                key = serve_methods.method_key(method, normalized)
                got = json.dumps(doc["result"], sort_keys=True)
                want = json.dumps(baseline[key], sort_keys=True)
                compared += 1
                if got != want:
                    violations.append({
                        "phase": "serve", "program": str(params),
                        "detail": f"client {ci} request {i} ({method}) "
                                  "diverged from the one-shot baseline",
                    })
        for err in errors:
            # Only transient admission refusals are legitimate; anything
            # else is a wrong/missing verdict.
            if err["code"] in ("overloaded", "shutting_down"):
                refused += 1
            else:
                violations.append({
                    "phase": "serve",
                    "detail": f"client {err['client']} request "
                              f"{err['index']} failed terminally: "
                              f"{err['code']}: {err['message']}",
                })
    finally:
        if owned:
            shutil.rmtree(root, ignore_errors=True)

    return {
        "clients": clients,
        "requests": sum(len(s) for s in schedules),
        "compared": compared,
        "refused": refused,
        "cache_corrupted": corrupted,
        "violations": violations,
    }
