"""Heavy method implementations behind the serve daemon.

Each method is a pure function ``normalized params → result document``,
and each result document is **exactly** what the corresponding one-shot
CLI command prints with ``--format json``:

=========  =====================================================
method     one-shot equivalent
=========  =====================================================
check      ``deepmc check --program NAME --format json``
crashsim   ``deepmc crashsim P1 P2 ... --format json``
litmus     ``deepmc litmus T1 T2 ... --format json``
fuzz       ``deepmc fuzz --seeds SPEC ... --format json``
=========  =====================================================

That equivalence is the daemon's core correctness contract — the chaos
serve phase and the CI serve job diff the two byte-for-byte — so nothing
nondeterministic (timings, cache provenance, worker attribution) may
ever appear in a result document.

Params are validated and *normalized* (defaults filled in) up front, so
``{"program": "x"}`` and ``{"program": "x", "model": null}`` share one
artifact-store key. The cooperative ``deadline`` threads into the stages
that support budgets: the static checker raises
:class:`~repro.errors.DeadlineExceeded` (a static report has no safe
partial), crash simulation degrades to a well-formed document marked
``truncated`` + ``deadline_exceeded``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional

from ..deadline import Deadline

_MODELS = ("strict", "epoch", "strand")


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


def _str_list(params: Dict[str, Any], key: str) -> list:
    value = params.get(key, [])
    _require(isinstance(value, list)
             and all(isinstance(v, str) for v in value),
             f"'{key}' must be a list of strings")
    return list(value)


def _opt_model(params: Dict[str, Any]) -> Optional[str]:
    model = params.get("model")
    _require(model is None or model in _MODELS,
             f"'model' must be one of {', '.join(_MODELS)}")
    return model


def _pos_int(params: Dict[str, Any], key: str, default: int) -> int:
    value = params.get(key, default)
    _require(isinstance(value, int) and not isinstance(value, bool)
             and value > 0, f"'{key}' must be a positive integer")
    return value


def _check_unknown(params: Dict[str, Any], allowed: tuple) -> None:
    unknown = set(params) - set(allowed)
    _require(not unknown,
             f"unknown param(s): {', '.join(sorted(unknown))}")


# -- validation / normalization ---------------------------------------------

def _validate_check(params: Dict[str, Any]) -> Dict[str, Any]:
    _check_unknown(params, ("program", "file", "model"))
    program, file = params.get("program"), params.get("file")
    _require((program is None) != (file is None),
             "check needs exactly one of 'program'/'file'")
    _require(program is None or isinstance(program, str),
             "'program' must be a string")
    _require(file is None or isinstance(file, str),
             "'file' must be a string")
    out: Dict[str, Any] = {"model": _opt_model(params)}
    if program is not None:
        out["program"] = program
    else:
        out["file"] = file
    return out


def _validate_crashsim(params: Dict[str, Any]) -> Dict[str, Any]:
    _check_unknown(params, ("programs", "fixed", "max_states"))
    programs = _str_list(params, "programs")
    _require(bool(programs), "'programs' must name at least one program")
    fixed = params.get("fixed", False)
    _require(isinstance(fixed, bool), "'fixed' must be a boolean")
    return {"programs": programs, "fixed": fixed,
            "max_states": _pos_int(params, "max_states", 4096)}


def _validate_litmus(params: Dict[str, Any]) -> Dict[str, Any]:
    _check_unknown(params, ("tests", "model", "max_states"))
    return {"tests": _str_list(params, "tests"),
            "model": _opt_model(params),
            "max_states": _pos_int(params, "max_states", 4096)}


def _validate_fuzz(params: Dict[str, Any]) -> Dict[str, Any]:
    _check_unknown(params, ("seeds", "budget", "model", "max_states",
                            "shrink"))
    seeds = params.get("seeds", [0])
    _require(isinstance(seeds, list) and bool(seeds)
             and all(isinstance(s, int) and not isinstance(s, bool)
                     for s in seeds),
             "'seeds' must be a non-empty list of integers")
    shrink = params.get("shrink", True)
    _require(isinstance(shrink, bool), "'shrink' must be a boolean")
    return {"seeds": list(seeds),
            "budget": _pos_int(params, "budget", 8),
            "model": _opt_model(params),
            "max_states": _pos_int(params, "max_states", 2048),
            "shrink": shrink}


_VALIDATORS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "check": _validate_check,
    "crashsim": _validate_crashsim,
    "litmus": _validate_litmus,
    "fuzz": _validate_fuzz,
}


def normalize(method: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Validate one heavy method's params and fill defaults in.
    Raises ``ValueError`` (→ ``bad_request``) on anything malformed."""
    validator = _VALIDATORS.get(method)
    _require(validator is not None, f"not a heavy method: {method}")
    return validator(params)


def method_key(method: str, params: Dict[str, Any]) -> str:
    """Canonical artifact-store key of one (method, normalized params)."""
    return json.dumps({"method": method, "params": params},
                      sort_keys=True, separators=(",", ":"))


# -- execution --------------------------------------------------------------

def run_check(params: Dict[str, Any],
              deadline: Optional[Deadline] = None,
              cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """The ``check`` result document (also behind ``deepmc check
    --program``). The cache path is only taken when no live deadline is
    attached: the deadline is not part of the cache key (it must not be —
    it would make keys time-dependent), so a budgeted run bypasses the
    cache rather than caching a budget-shaped answer."""
    from ..checker.engine import StaticChecker
    from ..corpus import REGISTRY

    if "program" in params:
        program = REGISTRY.program(params["program"])
        module = program.build()
        subject = {"program": params["program"]}
    else:
        from ..cli import _load_module

        module = _load_module(params["file"])
        subject = {"file": params["file"]}

    model = params.get("model")
    use_cache = cache_dir and (deadline is None or deadline.unbounded)
    if use_cache:
        from ..parallel.cache import AnalysisCache, check_with_cache

        checked = check_with_cache(module, AnalysisCache(cache_dir),
                                   model=model)
        report, traces_checked = checked.report, checked.traces_checked
    else:
        checker = StaticChecker(module, model=model, deadline=deadline)
        report = checker.run()
        traces_checked = checker.traces_checked
    doc = dict(subject)
    doc.update({
        "model": report.model,
        "report": report.to_dict(),
        "traces_checked": traces_checked,
        "suppressed": 0,
    })
    return doc


def run_crashsim(params: Dict[str, Any],
                 deadline: Optional[Deadline] = None) -> Dict[str, Any]:
    """The ``crashsim`` result document (= ``results_payload``). Under a
    deadline cut, per-program entries come back well-formed but marked
    ``truncated`` + ``deadline_exceeded`` — partial, never torn."""
    import traceback

    from ..crashsim.engine import results_payload, simulate_program

    payloads = []
    for name in params["programs"]:
        try:
            report = simulate_program(name, fixed=params["fixed"],
                                      max_states=params["max_states"],
                                      deadline=deadline)
            payloads.append({"name": name, "ok": True,
                             "result": report.to_dict()})
        except Exception:
            payloads.append({"name": name, "ok": False,
                             "error": traceback.format_exc()})
    return results_payload(payloads)


def run_litmus_method(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..litmus import get_test, run_litmus

    tests = ([get_test(name) for name in params["tests"]]
             if params["tests"] else None)
    models = [params["model"]] if params["model"] else None
    return run_litmus(tests=tests, models=models,
                      max_states=params["max_states"])


def run_fuzz_method(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..fuzz import run_fuzz

    return run_fuzz(seeds=params["seeds"], budget=params["budget"],
                    model=params["model"],
                    max_states=params["max_states"],
                    shrink=params["shrink"])


def run_method(method: str, params: Dict[str, Any],
               deadline: Optional[Deadline] = None,
               cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Execute one heavy method on *normalized* params."""
    if method == "check":
        return run_check(params, deadline=deadline, cache_dir=cache_dir)
    if method == "crashsim":
        return run_crashsim(params, deadline=deadline)
    if method == "litmus":
        return run_litmus_method(params)
    if method == "fuzz":
        return run_fuzz_method(params)
    raise ValueError(f"not a heavy method: {method}")
