"""Wire protocol of the ``deepmc serve`` daemon.

Newline-delimited JSON over a stream socket (UNIX-domain or localhost
TCP): each request is one JSON object on one line, each response is one
JSON object on one line. Responses carry the request's ``id`` and may
arrive out of submission order (heavy methods are dispatched to a worker
pool while light methods are answered inline), so clients correlate by
``id``, never by position.

Request::

    {"id": 7, "method": "check", "params": {"program": "pmdk_hashmap"}}

Success response::

    {"id": 7, "ok": true, "result": {...}, "meta": {...}}

``result`` carries **only deterministic content** — the same document the
one-shot CLI prints with ``--format json`` — which is what makes serve
responses byte-comparable against CLI output (the chaos serve phase and
the CI serve job assert exactly that). Everything nondeterministic about
*how* the answer was produced (warm/cold, queue time, attempt counts)
lives in ``meta``, which comparisons ignore.

Error response::

    {"id": 7, "ok": false,
     "error": {"code": "overloaded", "message": "...",
               "retryable": true, "retry_after_ms": 120}}

Error codes are a closed set (:data:`ERROR_CODES`); ``retryable`` tells a
client whether resubmitting the identical request can succeed —
``overloaded`` and ``shutting_down`` are transient admission verdicts,
``deadline_exceeded`` / ``bad_request`` / ``method_not_found`` /
``internal`` are not (a request that blew its budget once will blow it
again). ``retry_after_ms`` is the server's backpressure hint; clients
should wait at least that long (the bundled client takes the max of the
hint and its own jittered backoff).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

#: protocol identifier, first line every server sends on a new connection
HELLO_SCHEMA = "deepmc.serve/v1"

#: heavy methods: routed through the admission queue + worker pool
HEAVY_METHODS = ("check", "crashsim", "litmus", "fuzz")

#: light methods: answered inline on the connection thread
LIGHT_METHODS = ("ping", "health", "ready", "stats", "methods", "suppress")

METHODS = HEAVY_METHODS + LIGHT_METHODS

#: methods a client may safely resubmit after a transient failure.
#: Everything here is a pure function of (params, warm artifacts);
#: ``suppress`` mutates per-session state, so the client never retries it
#: on an ambiguous transport failure (the first send may have landed).
IDEMPOTENT_METHODS = HEAVY_METHODS + ("ping", "health", "ready", "stats",
                                      "methods")

#: closed set of error codes with their retryability
ERROR_CODES = {
    "bad_request": False,
    "method_not_found": False,
    "overloaded": True,
    "deadline_exceeded": False,
    "shutting_down": True,
    "internal": False,
}


class ProtocolError(ValueError):
    """A malformed frame or request (maps to ``bad_request``)."""


class Request:
    """One parsed, validated request frame."""

    __slots__ = ("id", "method", "params")

    def __init__(self, id: Any, method: str, params: Dict[str, Any]):
        self.id = id
        self.method = method
        self.params = params

    @classmethod
    def parse(cls, line: str) -> "Request":
        """Parse one request line; raises :class:`ProtocolError` with a
        message safe to echo back in a ``bad_request`` response."""
        try:
            doc = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"invalid JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise ProtocolError("request must be a JSON object")
        if "id" not in doc:
            raise ProtocolError("request is missing 'id'")
        rid = doc["id"]
        if isinstance(rid, (dict, list)):
            raise ProtocolError("'id' must be a scalar")
        method = doc.get("method")
        if not isinstance(method, str) or not method:
            raise ProtocolError("request is missing 'method'")
        params = doc.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object")
        unknown = set(doc) - {"id", "method", "params"}
        if unknown:
            raise ProtocolError(
                f"unknown request key(s): {', '.join(sorted(unknown))}")
        return cls(rid, method, params)


# -- response builders ------------------------------------------------------

def success(rid: Any, result: Dict[str, Any],
            meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"id": rid, "ok": True, "result": result}
    if meta:
        doc["meta"] = meta
    return doc


def failure(rid: Any, code: str, message: str,
            retry_after_ms: Optional[int] = None,
            stage: Optional[str] = None) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error: Dict[str, Any] = {
        "code": code,
        "message": message,
        "retryable": ERROR_CODES[code],
    }
    if retry_after_ms is not None:
        error["retry_after_ms"] = int(retry_after_ms)
    if stage is not None:
        error["stage"] = stage
    return {"id": rid, "ok": False, "error": error}


def encode(doc: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return (json.dumps(doc, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def decode_response(line: str) -> Dict[str, Any]:
    """Client-side frame validation (the mirror of :meth:`Request.parse`)."""
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"invalid response JSON: {exc}") from None
    if not isinstance(doc, dict) or "ok" not in doc:
        raise ProtocolError("response must be an object with 'ok'")
    if doc["ok"]:
        if not isinstance(doc.get("result"), dict):
            raise ProtocolError("success response is missing 'result'")
    else:
        err = doc.get("error")
        if not isinstance(err, dict) or "code" not in err:
            raise ProtocolError("error response is missing 'error.code'")
    return doc


def parse_address(socket_path: Optional[str],
                  port: Optional[int]) -> Tuple[str, Any]:
    """Normalize the CLI's ``--socket``/``--port`` pair to an address
    tuple: ``("unix", path)`` or ``("tcp", ("127.0.0.1", port))``.
    Exactly one must be given."""
    if (socket_path is None) == (port is None):
        raise ProtocolError("exactly one of --socket/--port is required")
    if socket_path is not None:
        return ("unix", socket_path)
    return ("tcp", ("127.0.0.1", int(port)))
