"""Per-connection session state.

Each client connection owns a :class:`SessionState`: the *mutable*,
*private* counterpart to the shared immutable
:class:`~repro.serve.artifacts.ArtifactStore`. Today that state is one
thing — a warning-suppression set built up by ``suppress`` calls — but
the split is the load-bearing design point: a session can never observe
another session's mutations, and no mutation ever reaches the store (the
suppression filter runs on the deep copy ``get`` hands out).

Suppressions are applied *after* the warm lookup, so two sessions with
different suppression sets share one cached analysis and still get
different (correctly filtered) reports.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, Tuple

from ..checker.report import Report
from ..checker.suppressions import Suppression, SuppressionDB

_session_ids = itertools.count(1)


class SessionState:
    """One connection's private state (thread-safe: the connection
    thread mutates via ``suppress`` while the dispatcher reads via
    ``filter_check_doc``)."""

    def __init__(self) -> None:
        self.session_id = next(_session_ids)
        self._lock = threading.Lock()
        self._db = SuppressionDB()

    def suppress(self, rule: str, file: str, line: int,
                 reason: str = "") -> bool:
        """Add one suppression; returns False when already present."""
        entry = Suppression(rule, file, int(line),
                            reason or "suppressed via serve session",
                            source=f"session-{self.session_id}")
        with self._lock:
            return self._db.add(entry)

    def suppression_count(self) -> int:
        with self._lock:
            return len(self._db)

    def filter_check_doc(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Apply this session's suppressions to a ``check`` result doc.

        ``doc`` is already a private copy (the store deep-copies on
        ``get``), so filtering in place is safe; the stored entry keeps
        the unfiltered report. With an empty suppression set the doc
        passes through untouched — byte-identical to the one-shot CLI.
        """
        with self._lock:
            if not len(self._db):
                return doc
            report = Report.from_dict(doc["report"])
            kept, suppressed = self._db.filter(report)
        doc["report"] = kept.to_dict()
        doc["suppressed"] = doc.get("suppressed", 0) + len(suppressed)
        return doc


def parse_suppress_params(params: Dict[str, Any]) -> Tuple[str, str, int, str]:
    """Validate ``suppress`` params; raises ``ValueError`` on bad input."""
    missing = [k for k in ("rule", "file", "line") if k not in params]
    if missing:
        raise ValueError(f"suppress is missing {', '.join(missing)}")
    rule, file = params["rule"], params["file"]
    if not isinstance(rule, str) or not isinstance(file, str):
        raise ValueError("suppress 'rule' and 'file' must be strings")
    try:
        line = int(params["line"])
    except (TypeError, ValueError):
        raise ValueError("suppress 'line' must be an integer") from None
    reason = params.get("reason", "")
    if not isinstance(reason, str):
        raise ValueError("suppress 'reason' must be a string")
    return rule, file, line, reason
