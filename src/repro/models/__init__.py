"""Memory persistency model specifications.

Declarative encodings of the three models from Pelley et al. that DeepMC
checks against (§2.2), including the formal checking rules of Table 4
(model violations) and Table 5 (performance bugs). The checker engine
selects rule implementations by the rule ids listed here; the Table 4/5
benches print the ``formal`` sentences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CheckerError

CATEGORY_VIOLATION = "violation"
CATEGORY_PERFORMANCE = "performance"


@dataclass(frozen=True)
class RuleSpec:
    """One checking rule: identity, classification, and its formal text."""

    rule_id: str
    title: str
    formal: str
    category: str
    #: which model flags this rule runs under ("*" = all)
    models: Tuple[str, ...] = ("*",)
    #: checked dynamically rather than statically
    dynamic: bool = False


# --- Table 4: persistency model violation rules -----------------------------

R_STRICT_UNFLUSHED = RuleSpec(
    "strict.unflushed-write",
    "Unflushed/unlogged write",
    "An operation W writing to addr A1 should be followed by a flush F at "
    "addr A2, where A1 = A2.",
    CATEGORY_VIOLATION,
    ("strict",),
)

R_STRICT_MULTI_WRITE = RuleSpec(
    "strict.multi-write-barrier",
    "Multiple writes made durable at once",
    "A persist barrier P should be preceded by only one write W.",
    CATEGORY_VIOLATION,
    ("strict", "epoch"),  # under epoch, applies to writes outside any epoch
)

R_STRICT_MISSING_BARRIER = RuleSpec(
    "strict.missing-barrier",
    "Missing persist barriers",
    "Every cacheline flush F must be followed by a persist barrier P before "
    "the next persistent operation or transaction begins.",
    CATEGORY_VIOLATION,
    ("strict",),
)

R_EPOCH_MISSING_BARRIER = RuleSpec(
    "epoch.missing-barrier",
    "Missing persist barriers between epochs",
    "For any consecutive disjoint epochs E1 and E2, there should be a "
    "persist barrier P at the end of E1.",
    CATEGORY_VIOLATION,
    ("epoch",),
)

R_EPOCH_NESTED_BARRIER = RuleSpec(
    "epoch.nested-missing-barrier",
    "Missing persist barriers in nested transactions",
    "For any epoch E1 inside of epoch E2, there should be a persist "
    "barrier P at the end of E1.",
    CATEGORY_VIOLATION,
    ("epoch",),
)

R_EPOCH_UNFLUSHED = RuleSpec(
    "epoch.unflushed-write",
    "Unflushed/unlogged write",
    "A W writing to addr A1 should be followed by a flush F at addr A2, "
    "where A1 ∩ A2 = A1.",
    CATEGORY_VIOLATION,
    ("epoch",),
)

R_EPOCH_MISMATCH = RuleSpec(
    "epoch.semantic-mismatch",
    "Mismatch between program semantics and model",
    "For any consecutive epochs E1 and E2 writing to addresses A1 and A2 "
    "respectively, where A1 ∈ O1 and A2 ∈ O2, then O1 ≠ O2.",
    CATEGORY_VIOLATION,
    ("strict", "epoch"),  # strict: fence-delimited persist groups are epochs
)

R_STRAND_DEPENDENCE = RuleSpec(
    "strand.dependence",
    "Having data dependencies between strands",
    "For any concurrent strands S1 and S2, operating on addrs A1 and A2 "
    "respectively, A1 ∩ A2 = ∅.",
    CATEGORY_VIOLATION,
    ("strand",),
    dynamic=True,
)

# --- Table 5: performance bug rules (model-independent) ---------------------

R_PERF_FLUSH_UNMODIFIED = RuleSpec(
    "perf.flush-unmodified",
    "Writing back unmodified data",
    "For operation F flushing addr A1, there should be a preceding "
    "operation W writing to addr A2 and A1 = A2.",
    CATEGORY_PERFORMANCE,
)

R_PERF_REDUNDANT_FLUSH = RuleSpec(
    "perf.redundant-flush",
    "Redundant write-backs of modified data",
    "For any two operations F1 and F2 in a transaction flushing addresses "
    "A1 and A2 respectively, A1 ∩ A2 = ∅.",
    CATEGORY_PERFORMANCE,
)

R_PERF_MULTI_PERSIST_TX = RuleSpec(
    "perf.multi-persist-tx",
    "Persist the same object multiple times in a transaction",
    "Within one durable transaction, each persistent object should be "
    "logged/persisted at most once.",
    CATEGORY_PERFORMANCE,
)

R_PERF_EMPTY_TX = RuleSpec(
    "perf.empty-durable-tx",
    "Durable transaction without persistent writes",
    "Every durable transaction should contain at least one persistent "
    "write to NVM.",
    CATEGORY_PERFORMANCE,
)

ALL_RULES: List[RuleSpec] = [
    R_STRICT_UNFLUSHED,
    R_STRICT_MULTI_WRITE,
    R_STRICT_MISSING_BARRIER,
    R_EPOCH_MISSING_BARRIER,
    R_EPOCH_NESTED_BARRIER,
    R_EPOCH_UNFLUSHED,
    R_EPOCH_MISMATCH,
    R_STRAND_DEPENDENCE,
    R_PERF_FLUSH_UNMODIFIED,
    R_PERF_REDUNDANT_FLUSH,
    R_PERF_MULTI_PERSIST_TX,
    R_PERF_EMPTY_TX,
]

RULES_BY_ID: Dict[str, RuleSpec] = {r.rule_id: r for r in ALL_RULES}


@dataclass(frozen=True)
class PersistencyModel:
    """One memory persistency model and the rules it activates."""

    name: str
    description: str
    rule_ids: Tuple[str, ...]

    def rules(self) -> List[RuleSpec]:
        return [RULES_BY_ID[r] for r in self.rule_ids]

    def violation_rules(self) -> List[RuleSpec]:
        return [r for r in self.rules() if r.category == CATEGORY_VIOLATION]

    def performance_rules(self) -> List[RuleSpec]:
        return [r for r in self.rules() if r.category == CATEGORY_PERFORMANCE]


_PERF_IDS = (
    R_PERF_FLUSH_UNMODIFIED.rule_id,
    R_PERF_REDUNDANT_FLUSH.rule_id,
    R_PERF_MULTI_PERSIST_TX.rule_id,
    R_PERF_EMPTY_TX.rule_id,
)

STRICT = PersistencyModel(
    "strict",
    "All persistent stores become durable in program order; every persist "
    "is individually flushed and fenced (PMDK, NVM-Direct).",
    (
        R_STRICT_UNFLUSHED.rule_id,
        R_STRICT_MULTI_WRITE.rule_id,
        R_STRICT_MISSING_BARRIER.rule_id,
        R_EPOCH_MISMATCH.rule_id,
    )
    + _PERF_IDS,
)

EPOCH = PersistencyModel(
    "epoch",
    "Persists are ordered at epoch granularity: everything before an epoch "
    "boundary persists before anything after it (PMFS, Mnemosyne).",
    (
        R_EPOCH_UNFLUSHED.rule_id,
        R_EPOCH_MISSING_BARRIER.rule_id,
        R_EPOCH_NESTED_BARRIER.rule_id,
        R_EPOCH_MISMATCH.rule_id,
        R_STRICT_MULTI_WRITE.rule_id,
    )
    + _PERF_IDS,
)

STRAND = PersistencyModel(
    "strand",
    "Strands persist concurrently when independent; data dependencies "
    "between strands must be ordered explicitly.",
    (
        R_EPOCH_UNFLUSHED.rule_id,
        R_EPOCH_MISSING_BARRIER.rule_id,
        R_STRAND_DEPENDENCE.rule_id,
    )
    + _PERF_IDS,
)

MODELS: Dict[str, PersistencyModel] = {
    "strict": STRICT,
    "epoch": EPOCH,
    "strand": STRAND,
}


def get_model(name: str) -> PersistencyModel:
    """Resolve a compile-flag model name (-strict/-epoch/-strand)."""
    try:
        return MODELS[name.lstrip("-")]
    except KeyError:
        raise CheckerError(
            f"unknown persistency model {name!r}; expected one of "
            f"{sorted(MODELS)}"
        ) from None
