"""False-positive suppression database (§5.4's proposed future work).

    "To further reduce false positives, we could maintain a database of
    user-specified rules to filter out some warnings. The database can be
    updated with the learned experiences of previously validated false
    positives."

A :class:`SuppressionDB` stores validated-false-positive sites as
``(rule_id, file, line)`` entries with a human-readable reason, persists
to JSON, filters reports, and can *learn* — importing the sites a user
marked as false after triage.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import CheckerError
from .report import Report, Warning_

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Suppression:
    """One known-false warning site."""

    rule_id: str
    file: str
    line: int
    reason: str = ""
    #: who/what validated the site ("user", "corpus", ...)
    source: str = "user"

    def key(self) -> Tuple[str, str, int]:
        return (self.rule_id, self.file, self.line)


class SuppressionDB:
    """A persistent set of suppressions with report filtering."""

    def __init__(self, entries: Iterable[Suppression] = ()):
        self._entries: Dict[Tuple[str, str, int], Suppression] = {}
        for e in entries:
            self.add(e)

    # -- mutation ----------------------------------------------------------
    def add(self, entry: Suppression) -> bool:
        """Insert an entry; returns False if the site was already known."""
        if entry.key() in self._entries:
            return False
        self._entries[entry.key()] = entry
        return True

    def learn_from_warning(self, warning: Warning_, reason: str,
                           source: str = "user") -> Suppression:
        """Record a triaged warning as a validated false positive."""
        entry = Suppression(warning.rule_id, warning.loc.file,
                            warning.loc.line, reason, source)
        self.add(entry)
        return entry

    def remove(self, rule_id: str, file: str, line: int) -> bool:
        return self._entries.pop((rule_id, file, line), None) is not None

    # -- queries --------------------------------------------------------------
    def suppresses(self, warning: Warning_) -> Optional[Suppression]:
        return self._entries.get(warning.key())

    def entries(self) -> List[Suppression]:
        return sorted(self._entries.values(),
                      key=lambda e: (e.file, e.line, e.rule_id))

    def __len__(self) -> int:
        return len(self._entries)

    def filter(self, report: Report) -> Tuple[Report, List[Warning_]]:
        """Split a report into (kept, suppressed) warnings."""
        kept = Report(report.module_name, report.model)
        suppressed: List[Warning_] = []
        for w in report.warnings():
            if self.suppresses(w) is not None:
                suppressed.append(w)
            else:
                kept.add(w)
        return kept, suppressed

    # -- persistence -------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "suppressions": [asdict(e) for e in self.entries()],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SuppressionDB":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckerError(f"cannot load suppression db {path}: {exc}")
        if payload.get("version") != _FORMAT_VERSION:
            raise CheckerError(
                f"suppression db {path}: unsupported version "
                f"{payload.get('version')!r}"
            )
        entries = []
        for raw in payload.get("suppressions", []):
            try:
                entries.append(Suppression(**raw))
            except TypeError as exc:
                raise CheckerError(
                    f"suppression db {path}: malformed entry {raw!r} ({exc})"
                )
        return cls(entries)


def learn_from_corpus() -> SuppressionDB:
    """Seed a database from the corpus's validated false positives — the
    "learned experiences" bootstrap the paper sketches."""
    from ..corpus import REGISTRY

    db = SuppressionDB()
    for bug in REGISTRY.bugs(real=False):
        db.add(Suppression(bug.rule_id, bug.file, bug.line,
                           reason=bug.description, source="corpus"))
    return db
