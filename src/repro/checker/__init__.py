"""Static checker: rule engine, warning reports, suppressions, fixes."""

from .engine import CheckTimings, StaticChecker, analysis_roots
from .fixes import FixSuggestion, suggest_fix, suggest_fixes
from .report import Report, Warning_
from .suppressions import Suppression, SuppressionDB, learn_from_corpus

__all__ = [
    "CheckTimings",
    "FixSuggestion",
    "Report",
    "StaticChecker",
    "Suppression",
    "SuppressionDB",
    "Warning_",
    "analysis_roots",
    "learn_from_corpus",
    "suggest_fix",
    "suggest_fixes",
]
