"""Rule framework for the static checker.

Every rule walks one merged trace (program-order events) and emits
warnings. Rules are stateless across traces — the engine instantiates a
fresh rule object per trace, and the report deduplicates by (rule, loc).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...analysis.ranges import MemRange
from ...analysis.traces import Event, Trace
from ...ir.module import Module
from ...models import PersistencyModel
from ..report import Warning_


@dataclass
class CheckContext:
    """Shared inputs for a rule run."""

    module: Module
    model: PersistencyModel
    root: str


class TraceRule:
    """Base class: subclasses implement the event walk."""

    #: rule ids this class can emit (for engine bookkeeping)
    emits: tuple = ()

    def __init__(self) -> None:
        self.warnings: List[Warning_] = []

    # -- subclass protocol -------------------------------------------------
    def on_event(self, event: Event, ctx: CheckContext) -> None:
        raise NotImplementedError

    def on_end(self, ctx: CheckContext) -> None:
        """Called once after the last event of the trace."""

    # -- driver ----------------------------------------------------------------
    def check(self, trace: Trace, ctx: CheckContext) -> List[Warning_]:
        from ...analysis.traces import EV_TRUNCATED

        self.warnings = []
        truncated = False
        for event in trace.events:
            if event.kind == EV_TRUNCATED:
                # The path was cut by a loop/size bound: everything after
                # the cut would be checked against incomplete state (e.g. a
                # flush whose barrier sits in the elided tail). Stop here —
                # every truncated path has complete siblings with fewer
                # loop iterations that cover the rest of the trace.
                truncated = True
                break
            self.on_event(event, ctx)
        if not truncated:
            self.on_end(ctx)
        return self.warnings

    # -- helpers -------------------------------------------------------------------
    def warn(self, rule_id: str, event: Event, message: str) -> None:
        self.warnings.append(
            Warning_(rule_id, event.loc, event.fn, message, source="static")
        )


def node_key(event: Event) -> Optional[int]:
    """Identity of the object an event touches (DSG representative id)."""
    if event.cell is None:
        return None
    return event.cell.node.find().node_id


def node_is_persistent(event: Event) -> bool:
    return event.cell is not None and event.cell.node.find().persistent


def node_label(event: Event) -> str:
    if event.cell is None:
        return "?"
    node = event.cell.node.find()
    if node.alloc_sites:
        fn, loc = sorted(node.alloc_sites)[0]
        return f"object allocated at {loc}"
    if node.elem_type is not None:
        return f"object of type {node.elem_type}"
    return f"object N{node.node_id}"


def event_range(event: Event) -> MemRange:
    assert event.cell is not None
    return event.cell.range(event.size)
