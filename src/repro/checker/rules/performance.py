"""Performance-bug rules (Table 5).

These are model-independent (§3.3): unnecessary persistent operations that
do not break crash consistency but waste NVM write bandwidth and latency
(an extra write-back costs 2–4x, per the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...analysis.ranges import MemRange, union_size
from ...analysis.traces import (
    EV_ALLOC,
    EV_FENCE,
    EV_FLUSH,
    EV_TXADD,
    EV_TXBEGIN,
    EV_TXEND,
    EV_WRITE,
    Event,
)
from ...ir.instructions import REGION_TX
from .base import CheckContext, TraceRule, event_range, node_is_persistent, node_key, node_label

#: Minimum provably-unwritten bytes in a flush before we call it
#: "flushing unmodified fields" (avoids noise from cacheline padding).
UNMODIFIED_FIELD_THRESHOLD = 8


class FlushUnmodifiedRule(TraceRule):
    """Writing back unmodified data: a flush with no (or far too little)
    preceding modification. The field-sensitive DSG is what lets this rule
    tell "one field written, whole object flushed" apart from a full
    rewrite (the Figure 5 ``pi_task`` bug)."""

    emits = ("perf.flush-unmodified",)

    def __init__(self) -> None:
        super().__init__()
        #: unconsumed writes per node
        self._writes: Dict[int, List[Tuple[MemRange, Event]]] = {}
        #: ranges already flushed per node with no intervening write
        self._flushed: Dict[int, List[MemRange]] = {}

    def on_event(self, event: Event, ctx: CheckContext) -> None:
        key = node_key(event)
        if event.kind == EV_ALLOC:
            # A fresh object: the alloc-site node is reused, but nothing
            # about the previous incarnation carries over.
            self._writes.pop(key, None)
            self._flushed.pop(key, None)
            return
        if event.kind == EV_WRITE:
            assert key is not None
            self._writes.setdefault(key, []).append((event_range(event), event))
            if key in self._flushed:
                rng = event_range(event)
                self._flushed[key] = [
                    f for f in self._flushed[key] if f.overlaps(rng) is False
                ]
            return
        if event.kind != EV_FLUSH or not node_is_persistent(event):
            return
        assert key is not None
        frange = event_range(event)
        # Already-flushed overlap is the redundant-flush rule's territory.
        if any(f.overlaps(frange) is not False for f in self._flushed.get(key, ())):
            self._flushed.setdefault(key, []).append(frange)
            return
        entries = self._writes.get(key, [])
        certain = [(r, e) for r, e in entries if frange.overlaps(r) is True]
        maybe = [(r, e) for r, e in entries if frange.overlaps(r) is None]
        if not certain and not maybe:
            self.warn(
                "perf.flush-unmodified",
                event,
                f"flush of {node_label(event)} with no preceding write to "
                f"the flushed range",
            )
        elif certain and not maybe:
            # Rebase write ranges onto the flush origin and clip to the
            # flush extent: certain overlaps are always offset-comparable,
            # so deltas are concrete even for symbolic (loop-element)
            # addresses.
            rebased = []
            for r, _ in certain:
                delta = r.offset.delta(frange.offset)
                if delta is None or r.size is None or frange.size is None:
                    rebased = None
                    break
                start = max(delta, 0)
                end = min(delta + r.size, frange.size)
                rebased.append(MemRange.concrete(start, max(end - start, 0)))
            covered = union_size(rebased) if rebased is not None else None
            if (
                covered is not None
                and frange.size is not None
                and frange.size - covered >= UNMODIFIED_FIELD_THRESHOLD
            ):
                self.warn(
                    "perf.flush-unmodified",
                    event,
                    f"flushing {frange.size} bytes of {node_label(event)} "
                    f"when only {covered} byte(s) were modified — "
                    f"unmodified fields are written back",
                )
            self._consume(key, frange)
        else:
            # Unresolvable overlap: stay quiet (perf warnings aim for
            # precision) but consume certain hits.
            self._consume(key, frange)
        self._flushed.setdefault(key, []).append(frange)

    def _consume(self, key: int, frange: MemRange) -> None:
        """Subtract the flushed range from unconsumed writes — partial
        flushes (per-field, per-line) consume incrementally."""
        from ...analysis.ranges import subtract

        entries = self._writes.get(key, [])
        remaining = []
        for r, e in entries:
            pieces = subtract(r, frange)
            if pieces is None:
                # Unresolvable relation: keep unless it certainly vanished.
                if frange.covers(r) is True:
                    continue
                remaining.append((r, e))
            else:
                remaining.extend((p, e) for p in pieces)
        self._writes[key] = remaining


class RedundantFlushRule(TraceRule):
    """Redundant write-backs of modified data: flushing a range again with
    no intervening write (the Figure 6 ``nvm_free_blk`` bug)."""

    emits = ("perf.redundant-flush",)

    def __init__(self) -> None:
        super().__init__()
        #: flushes that wrote back *modified* data (range, event)
        self._flushed: Dict[int, List[Tuple[MemRange, Event]]] = {}
        #: every write seen so far, per node
        self._writes: Dict[int, List[MemRange]] = {}

    def on_event(self, event: Event, ctx: CheckContext) -> None:
        key = node_key(event)
        if event.kind == EV_ALLOC:
            self._writes.pop(key, None)
            self._flushed.pop(key, None)
            return
        if event.kind == EV_WRITE and key is not None:
            rng = event_range(event)
            self._writes.setdefault(key, []).append(rng)
            if key in self._flushed:
                self._flushed[key] = [
                    (f, e)
                    for f, e in self._flushed[key]
                    if f.overlaps(rng) is False
                ]
            return
        if event.kind != EV_FLUSH or not node_is_persistent(event):
            return
        assert key is not None
        frange = event_range(event)
        prior = [
            (f, e)
            for f, e in self._flushed.get(key, ())
            if f.overlaps(frange) is True
        ]
        if prior:
            _f, first = prior[0]
            self.warn(
                "perf.redundant-flush",
                event,
                f"{node_label(event)} was already written back at "
                f"{first.loc} and not modified since",
            )
        # Table 5 row 2 targets redundant write-backs of *modified* data:
        # only a flush that may have covered a write arms the check (a
        # flush of never-written data is the flush-unmodified rule's bug).
        armed = any(
            frange.overlaps(w) is not False
            for w in self._writes.get(key, ())
        )
        if armed:
            self._flushed.setdefault(key, []).append((frange, event))


@dataclass
class _TxPersist:
    begin: Event
    #: per node: list of (range, event) persist-intent ops (txadd/flush)
    ops: Dict[int, List[Tuple[MemRange, Event]]] = field(default_factory=dict)
    warned_nodes: set = field(default_factory=set)


class MultiPersistInTxRule(TraceRule):
    """Persist the same object multiple times in a transaction: repeated
    ``txadd`` logging or flushing of overlapping ranges inside one durable
    transaction."""

    emits = ("perf.multi-persist-tx",)

    def __init__(self) -> None:
        super().__init__()
        self._stack: List[_TxPersist] = []

    def on_event(self, event: Event, ctx: CheckContext) -> None:
        if event.kind == EV_TXBEGIN and event.region_kind == REGION_TX:
            self._stack.append(_TxPersist(event))
            return
        if event.kind == EV_TXEND and event.region_kind == REGION_TX:
            if self._stack:
                self._stack.pop()
            return
        if event.kind not in (EV_TXADD, EV_FLUSH) or not self._stack:
            return
        key = node_key(event)
        if key is None or not node_is_persistent(event):
            return
        top = self._stack[-1]
        rng = event_range(event)
        prior = top.ops.get(key, [])
        if (
            key not in top.warned_nodes
            and any(rng.overlaps(p) is True for p, _ in prior)
        ):
            verb = "logged" if event.kind == EV_TXADD else "flushed"
            self.warn(
                "perf.multi-persist-tx",
                event,
                f"{node_label(event)} is {verb} again within the same "
                f"durable transaction",
            )
            top.warned_nodes.add(key)
        top.ops.setdefault(key, []).append((rng, event))


@dataclass
class _TxWrites:
    begin: Event
    has_write: bool = False


class EmptyDurableTxRule(TraceRule):
    """Durable transaction without persistent writes: the transaction's
    ordering/durability machinery runs for nothing (Figure 7)."""

    emits = ("perf.empty-durable-tx",)

    def __init__(self) -> None:
        super().__init__()
        self._stack: List[_TxWrites] = []

    def on_event(self, event: Event, ctx: CheckContext) -> None:
        if event.kind == EV_TXBEGIN and event.region_kind == REGION_TX:
            self._stack.append(_TxWrites(event))
            return
        if event.kind == EV_TXEND and event.region_kind == REGION_TX:
            if self._stack:
                record = self._stack.pop()
                if not record.has_write:
                    self.warn(
                        "perf.empty-durable-tx",
                        record.begin,
                        "durable transaction contains no persistent write "
                        "on this path; its persist operations are pure "
                        "overhead",
                    )
            return
        if event.kind == EV_WRITE:
            for record in self._stack:
                record.has_write = True
