"""Static checking rules (Tables 4 and 5)."""

import hashlib
from typing import Callable, Dict, List

from ...models import ALL_RULES, PersistencyModel
from .base import CheckContext, TraceRule
from .performance import (
    EmptyDurableTxRule,
    FlushUnmodifiedRule,
    MultiPersistInTxRule,
    RedundantFlushRule,
)
from .violation import (
    EpochBarrierRule,
    MultiWritePerBarrierRule,
    SemanticMismatchRule,
    StrandOverlapRule,
    StrictMissingBarrierRule,
    UnflushedWriteRule,
)


#: Bump when rule *behaviour* changes in a way the spec table can't see
#: (the fingerprint below already tracks spec additions/edits). Part of
#: every analysis-cache key, so stale cached reports die on upgrade.
RULESET_REVISION = 1


def ruleset_version() -> str:
    """Content fingerprint of the active rule set.

    Hashes every rule spec (id, title, formal text, category, models)
    together with :data:`RULESET_REVISION`. Any edit to Table 4/5 specs —
    or an explicit revision bump for implementation-only changes —
    changes the fingerprint and invalidates cached analysis results.
    """
    h = hashlib.sha256()
    h.update(f"rev={RULESET_REVISION}".encode())
    for spec in ALL_RULES:
        h.update(
            f"|{spec.rule_id}|{spec.title}|{spec.formal}|{spec.category}"
            f"|{','.join(spec.models)}|{int(spec.dynamic)}".encode()
        )
    return f"{RULESET_REVISION}.{h.hexdigest()[:16]}"


def build_rules(model: PersistencyModel) -> List[Callable[[], TraceRule]]:
    """Rule factories for one model (fresh instances per trace)."""
    ids = set(model.rule_ids)
    factories: List[Callable[[], TraceRule]] = []
    if "strict.unflushed-write" in ids:
        factories.append(lambda: UnflushedWriteRule("strict.unflushed-write"))
    if "epoch.unflushed-write" in ids:
        factories.append(lambda: UnflushedWriteRule("epoch.unflushed-write"))
    if "strict.multi-write-barrier" in ids:
        factories.append(lambda: MultiWritePerBarrierRule(model.name))
    if "strict.missing-barrier" in ids:
        factories.append(StrictMissingBarrierRule)
    if "epoch.missing-barrier" in ids or "epoch.nested-missing-barrier" in ids:
        between = "epoch.missing-barrier" in ids
        nested = "epoch.nested-missing-barrier" in ids
        factories.append(lambda b=between, n=nested: EpochBarrierRule(b, n))
    if "epoch.semantic-mismatch" in ids:
        factories.append(lambda: SemanticMismatchRule(model.name))
    if "strand.dependence" in ids:
        factories.append(StrandOverlapRule)
    if "perf.flush-unmodified" in ids:
        factories.append(FlushUnmodifiedRule)
    if "perf.redundant-flush" in ids:
        factories.append(RedundantFlushRule)
    if "perf.multi-persist-tx" in ids:
        factories.append(MultiPersistInTxRule)
    if "perf.empty-durable-tx" in ids:
        factories.append(EmptyDurableTxRule)
    return factories


__all__ = [
    "CheckContext",
    "RULESET_REVISION",
    "ruleset_version",
    "EmptyDurableTxRule",
    "EpochBarrierRule",
    "FlushUnmodifiedRule",
    "MultiPersistInTxRule",
    "MultiWritePerBarrierRule",
    "RedundantFlushRule",
    "SemanticMismatchRule",
    "StrandOverlapRule",
    "StrictMissingBarrierRule",
    "TraceRule",
    "UnflushedWriteRule",
    "build_rules",
]
