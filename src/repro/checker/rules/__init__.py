"""Static checking rules (Tables 4 and 5)."""

from typing import Callable, Dict, List

from ...models import PersistencyModel
from .base import CheckContext, TraceRule
from .performance import (
    EmptyDurableTxRule,
    FlushUnmodifiedRule,
    MultiPersistInTxRule,
    RedundantFlushRule,
)
from .violation import (
    EpochBarrierRule,
    MultiWritePerBarrierRule,
    SemanticMismatchRule,
    StrandOverlapRule,
    StrictMissingBarrierRule,
    UnflushedWriteRule,
)


def build_rules(model: PersistencyModel) -> List[Callable[[], TraceRule]]:
    """Rule factories for one model (fresh instances per trace)."""
    ids = set(model.rule_ids)
    factories: List[Callable[[], TraceRule]] = []
    if "strict.unflushed-write" in ids:
        factories.append(lambda: UnflushedWriteRule("strict.unflushed-write"))
    if "epoch.unflushed-write" in ids:
        factories.append(lambda: UnflushedWriteRule("epoch.unflushed-write"))
    if "strict.multi-write-barrier" in ids:
        factories.append(lambda: MultiWritePerBarrierRule(model.name))
    if "strict.missing-barrier" in ids:
        factories.append(StrictMissingBarrierRule)
    if "epoch.missing-barrier" in ids or "epoch.nested-missing-barrier" in ids:
        between = "epoch.missing-barrier" in ids
        nested = "epoch.nested-missing-barrier" in ids
        factories.append(lambda b=between, n=nested: EpochBarrierRule(b, n))
    if "epoch.semantic-mismatch" in ids:
        factories.append(lambda: SemanticMismatchRule(model.name))
    if "strand.dependence" in ids:
        factories.append(StrandOverlapRule)
    if "perf.flush-unmodified" in ids:
        factories.append(FlushUnmodifiedRule)
    if "perf.redundant-flush" in ids:
        factories.append(RedundantFlushRule)
    if "perf.multi-persist-tx" in ids:
        factories.append(MultiPersistInTxRule)
    if "perf.empty-durable-tx" in ids:
        factories.append(EmptyDurableTxRule)
    return factories


__all__ = [
    "CheckContext",
    "EmptyDurableTxRule",
    "EpochBarrierRule",
    "FlushUnmodifiedRule",
    "MultiPersistInTxRule",
    "MultiWritePerBarrierRule",
    "RedundantFlushRule",
    "SemanticMismatchRule",
    "StrandOverlapRule",
    "StrictMissingBarrierRule",
    "TraceRule",
    "UnflushedWriteRule",
    "build_rules",
]
