"""Model-violation rules (Table 4).

Each rule implements one row of Table 4 as an event-walk over a merged
trace. See DESIGN.md for how rule ids map to the bug classes of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...analysis.ranges import MemRange
from ...analysis.traces import (
    EV_FENCE,
    EV_FLUSH,
    EV_LOAD,
    EV_TXADD,
    EV_TXBEGIN,
    EV_TXEND,
    EV_WRITE,
    Event,
)
from ...ir.instructions import REGION_EPOCH, REGION_STRAND, REGION_TX
from .base import CheckContext, TraceRule, event_range, node_is_persistent, node_key, node_label


class UnflushedWriteRule(TraceRule):
    """Unflushed/unlogged write (strict and epoch variants).

    A persistent write must be covered, before the trace ends, by either a
    flush of (at least) its byte range or an undo-log entry of a durable
    transaction that commits. Flushes through unresolvable pointers do NOT
    discharge writes — the checker is conservative, which is one source of
    the paper's false positives (§5.4).
    """

    def __init__(self, rule_id: str):
        super().__init__()
        self.rule_id = rule_id
        self.emits = (rule_id,)
        #: pending (write event, innermost-tx marker, uncovered remnants)
        self._pending: List[Tuple[Event, Optional[int], List[MemRange]]] = []
        #: open durable transactions: (tx id, logged (node, range) entries)
        self._tx_stack: List[Tuple[int, List[Tuple[Optional[int], MemRange]]]] = []
        self._tx_counter = 0

    def _discharge(self, key: Optional[int], rng: MemRange) -> None:
        """Subtract a covering flush/log range from pending writes.

        Partial coverage splits the pending range — large writes flushed
        piecewise (per field or per cacheline) discharge incrementally.
        """
        from ...analysis.ranges import subtract

        still = []
        for w, m, remnants in self._pending:
            if node_key(w) != key:
                still.append((w, m, remnants))
                continue
            new_remnants: List[MemRange] = []
            for r in remnants:
                if rng.covers(r) is True:
                    continue
                pieces = subtract(r, rng)
                if pieces is None:
                    new_remnants.append(r)  # unresolvable: stay pending
                else:
                    new_remnants.extend(pieces)
            if new_remnants:
                still.append((w, m, new_remnants))
        self._pending = still

    def on_event(self, event: Event, ctx: CheckContext) -> None:
        if event.kind == EV_WRITE:
            marker = self._tx_stack[-1][0] if self._tx_stack else None
            self._pending.append((event, marker, [event_range(event)]))
            return
        if event.kind == EV_FLUSH:
            self._discharge(node_key(event), event_range(event))
            return
        if event.kind == EV_TXADD and self._tx_stack:
            self._tx_stack[-1][1].append((node_key(event), event_range(event)))
            return
        if event.kind == EV_TXBEGIN and event.region_kind == REGION_TX:
            self._tx_counter += 1
            self._tx_stack.append((self._tx_counter, []))
            return
        if event.kind == EV_TXEND and event.region_kind == REGION_TX:
            if not self._tx_stack:
                return
            tx_id, logged = self._tx_stack.pop()
            # Commit flushes every logged range (PMDK semantics).
            for key, rng in logged:
                self._discharge(key, rng)
            # Writes made directly inside this transaction must be durable
            # by its commit — crossing the commit unlogged and unflushed
            # breaks the transaction's atomicity (the Figure 2 bug).
            still = []
            for w, m, remnants in self._pending:
                if m == tx_id:
                    self._warn_write(w)
                else:
                    still.append((w, m, remnants))
            self._pending = still

    def _warn_write(self, w: Event) -> None:
        self.warn(
            self.rule_id,
            w,
            f"persistent write to {node_label(w)} is never flushed, "
            f"logged, or committed",
        )

    def on_end(self, ctx: CheckContext) -> None:
        for w, _m, _remnants in self._pending:
            self._warn_write(w)


class MultiWritePerBarrierRule(TraceRule):
    """Multiple writes made durable at once (strict; and, under epoch,
    writes *outside* any epoch region, which must follow per-write
    durability)."""

    emits = ("strict.multi-write-barrier",)

    def __init__(self, model_name: str):
        super().__init__()
        self.model_name = model_name
        self._writes: List[Event] = []
        self._flushes: List[Event] = []
        self._epoch_depth = 0

    def _reset(self) -> None:
        self._writes = []
        self._flushes = []

    def on_event(self, event: Event, ctx: CheckContext) -> None:
        if event.kind == EV_TXBEGIN and event.region_kind == REGION_EPOCH:
            self._epoch_depth += 1
            return
        if event.kind == EV_TXEND and event.region_kind == REGION_EPOCH:
            self._epoch_depth = max(0, self._epoch_depth - 1)
            return
        if event.kind in (EV_TXBEGIN, EV_TXEND):
            self._reset()  # durable-tx commits segment separately
            return
        if event.kind == EV_WRITE:
            if self.model_name == "epoch" and self._epoch_depth > 0:
                return  # multiple writes inside an epoch are the point
            self._writes.append(event)
            return
        if event.kind == EV_FLUSH:
            self._flushes.append(event)
            return
        if event.kind == EV_FENCE:
            # Only writes actually made durable by this barrier count:
            # covered by some flush of this segment.
            durable = [
                w
                for w in self._writes
                if any(
                    node_key(w) == node_key(f)
                    and event_range(f).covers(event_range(w)) is True
                    for f in self._flushes
                )
            ]
            distinct: List[Event] = []
            for w in durable:
                if not any(
                    node_key(w) == node_key(d)
                    and event_range(w).same_range(event_range(d)) is True
                    for d in distinct
                ):
                    distinct.append(w)
            if len(distinct) >= 2:
                self.warn(
                    "strict.multi-write-barrier",
                    event,
                    f"one persist barrier makes {len(distinct)} distinct "
                    f"writes durable at once",
                )
            self._reset()


class StrictMissingBarrierRule(TraceRule):
    """Missing persist barrier after a flush (strict): every flush must be
    fenced before the next persistent operation or transaction begins
    (the NVM-Direct Figure 3 pattern)."""

    emits = ("strict.missing-barrier",)

    def __init__(self) -> None:
        super().__init__()
        self._unbarriered: List[Event] = []

    def _flag(self, reason: str) -> None:
        for f in self._unbarriered:
            self.warn(
                "strict.missing-barrier",
                f,
                f"cacheline flush is not followed by a persist barrier "
                f"before {reason}",
            )
        self._unbarriered = []

    def on_event(self, event: Event, ctx: CheckContext) -> None:
        if event.kind == EV_FLUSH:
            self._unbarriered.append(event)
            return
        if event.kind == EV_FENCE:
            self._unbarriered = []
            return
        if event.kind == EV_WRITE and self._unbarriered:
            self._flag("the next persistent write")
            return
        if event.kind == EV_TXBEGIN and event.region_kind == REGION_TX:
            if self._unbarriered:
                self._flag("the next transaction begins")

    def on_end(self, ctx: CheckContext) -> None:
        self._flag("the end of execution")


@dataclass
class _EpochState:
    begin: Event
    nested: bool
    persist_op_since_fence: bool = False
    had_persist_op: bool = False


class EpochBarrierRule(TraceRule):
    """Missing persist barriers between consecutive epochs and at the end
    of nested (inner) epochs — the two epoch rows of Table 4."""

    emits = ("epoch.missing-barrier", "epoch.nested-missing-barrier")

    def __init__(self, check_between: bool = True, check_nested: bool = True):
        super().__init__()
        self.check_between = check_between
        self.check_nested = check_nested
        self._stack: List[_EpochState] = []
        #: last top-level epoch that ended without a trailing barrier
        self._dangling_end: Optional[Event] = None

    def on_event(self, event: Event, ctx: CheckContext) -> None:
        if event.kind == EV_TXBEGIN and event.region_kind == REGION_EPOCH:
            if self._dangling_end is not None and self.check_between:
                self.warn(
                    "epoch.missing-barrier",
                    self._dangling_end,
                    "no persist barrier between the end of this epoch and "
                    "the next epoch",
                )
            self._dangling_end = None
            self._stack.append(_EpochState(event, nested=bool(self._stack)))
            return
        if event.kind == EV_TXEND and event.region_kind == REGION_EPOCH:
            if not self._stack:
                return
            state = self._stack.pop()
            unbarriered = state.persist_op_since_fence and state.had_persist_op
            if state.nested or self._stack:
                if unbarriered and self.check_nested:
                    self.warn(
                        "epoch.nested-missing-barrier",
                        event,
                        "inner epoch (nested transaction) ends without a "
                        "persist barrier; its writes are not ordered before "
                        "the outer transaction resumes",
                    )
                # inner activity counts as persist ops of the outer epoch
                if self._stack and state.had_persist_op:
                    self._stack[-1].persist_op_since_fence |= unbarriered
                    self._stack[-1].had_persist_op = True
            else:
                if unbarriered:
                    self._dangling_end = event
            return
        if event.kind == EV_FENCE:
            if self._stack:
                self._stack[-1].persist_op_since_fence = False
            self._dangling_end = None
            return
        if event.kind in (EV_WRITE, EV_FLUSH):
            if self._stack:
                self._stack[-1].persist_op_since_fence = True
                self._stack[-1].had_persist_op = True


class SemanticMismatchRule(TraceRule):
    """Mismatch between program semantics and model (Table 4 row 6).

    Consecutive persist groups — epoch regions under the epoch model,
    fence-delimited segments under strict — must not write *disjoint
    fields of the same persistent object*: splitting one object's
    initialization across two groups breaks the atomicity the programmer
    intended (the Figure 1 hashmap bug)."""

    emits = ("epoch.semantic-mismatch",)

    def __init__(self, model_name: str):
        super().__init__()
        self.model_name = model_name
        #: writes of the group being accumulated: node -> [(range, event)]
        self._cur: Dict[int, List[Tuple[MemRange, Event]]] = {}
        self._prev: Dict[int, List[Tuple[MemRange, Event]]] = {}
        self._epoch_depth = 0

    def _group_end(self) -> None:
        if self._cur:
            for key, entries in self._cur.items():
                prev_entries = self._prev.get(key)
                if not prev_entries:
                    continue
                disjoint = all(
                    rng.overlaps(prng) is False
                    for rng, _ in entries
                    for prng, _ in prev_entries
                )
                if disjoint:
                    _rng, ev = entries[0]
                    self.warn(
                        "epoch.semantic-mismatch",
                        ev,
                        f"consecutive persist groups write disjoint fields "
                        f"of the same {node_label(ev)}; the object is meant "
                        f"to be persisted atomically",
                    )
            self._prev = self._cur
            self._cur = {}

    def on_event(self, event: Event, ctx: CheckContext) -> None:
        if event.kind == EV_WRITE:
            key = node_key(event)
            if key is not None:
                self._cur.setdefault(key, []).append((event_range(event), event))
            return
        if self.model_name == "epoch":
            if event.kind == EV_TXBEGIN and event.region_kind == REGION_EPOCH:
                self._epoch_depth += 1
                return
            if event.kind == EV_TXEND and event.region_kind == REGION_EPOCH:
                self._epoch_depth = max(0, self._epoch_depth - 1)
                if self._epoch_depth == 0:
                    self._group_end()
                return
            if event.kind == EV_FENCE and self._epoch_depth == 0:
                self._group_end()
            return
        # strict: groups are the atomic sections the programmer delimited —
        # durable transactions. (Fence-delimited grouping would flag every
        # legitimate store-persist-store-persist sequence.)
        if event.kind == EV_TXEND and event.region_kind == REGION_TX:
            self._group_end()


class StrandOverlapRule(TraceRule):
    """Static strand-dependence check: consecutive strands with no barrier
    between them must have disjoint footprints (Table 4 last row). The
    full check — including cross-thread interleavings — is the dynamic
    checker's job; statically we catch same-trace overlaps."""

    emits = ("strand.dependence",)

    def __init__(self) -> None:
        super().__init__()
        self._in_strand = False
        self._cur_writes: Dict[int, List[Tuple[MemRange, Event]]] = {}
        self._cur_reads: Dict[int, List[Tuple[MemRange, Event]]] = {}
        self._prev_writes: Dict[int, List[Tuple[MemRange, Event]]] = {}
        self._barrier_since_prev = True

    def on_event(self, event: Event, ctx: CheckContext) -> None:
        if event.kind == EV_TXBEGIN and event.region_kind == REGION_STRAND:
            self._in_strand = True
            self._cur_writes = {}
            self._cur_reads = {}
            return
        if event.kind == EV_TXEND and event.region_kind == REGION_STRAND:
            self._in_strand = False
            if not self._barrier_since_prev:
                self._check_overlap()
            self._prev_writes = self._cur_writes
            self._barrier_since_prev = False
            return
        if event.kind == EV_FENCE:
            self._barrier_since_prev = True
            return
        if not self._in_strand:
            return
        key = node_key(event)
        if key is None:
            return
        if event.kind == EV_WRITE:
            self._cur_writes.setdefault(key, []).append((event_range(event), event))
        elif event.kind == EV_LOAD:
            self._cur_reads.setdefault(key, []).append((event_range(event), event))

    def _check_overlap(self) -> None:
        for key, prev_entries in self._prev_writes.items():
            for cur_map, dep in ((self._cur_writes, "WAW"), (self._cur_reads, "RAW")):
                for rng, ev in cur_map.get(key, ()):
                    if any(rng.overlaps(prng) is not False for prng, _ in prev_entries):
                        self.warn(
                            "strand.dependence",
                            ev,
                            f"{dep} dependence between concurrent strands on "
                            f"{node_label(ev)} with no ordering barrier",
                        )
                        break
