"""A generic (model-agnostic) crash-consistency checker — the baseline.

The paper's positioning (§1, §6): existing tools "focused on basic
programming bugs and fall short of detecting the violations of a specific
memory persistency model"; e.g. "the model-violation bugs identified by
DeepMC cannot be detected by existing tools such as AGAMOTTO".

This module implements that class of tool over the same traces: it knows
nothing about persistency models and checks only the two universal
properties such tools report —

* **unflushed write**: a persistent write that is *never* covered by any
  later flush or log anywhere in the execution (no model-scoped windows:
  a flush at program end discharges everything before it);
* **missing final drain**: a flush never followed by any fence by the end
  of the execution.

Everything model-specific — per-write barriers under strict, epoch
boundary ordering, nested-transaction barriers, semantic mismatches,
model-aware performance rules — is invisible to it, which is what the
comparison benchmark quantifies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis.ranges import MemRange, subtract
from ..analysis.traces import (
    EV_FENCE,
    EV_FLUSH,
    EV_TXADD,
    EV_TXEND,
    EV_WRITE,
    Event,
    Trace,
    TraceCollector,
)
from ..ir.instructions import REGION_TX
from ..ir.module import Module
from ..ir.verifier import verify_module
from .engine import analysis_roots
from .report import Report, Warning_

RULE_GENERIC_UNFLUSHED = "generic.unflushed-write"
RULE_GENERIC_UNDRAINED = "generic.undrained-flush"


class _GenericTraceCheck:
    """One trace walk of the baseline's two checks."""

    def __init__(self) -> None:
        #: (write event, uncovered remnants)
        self.pending: List[Tuple[Event, List[MemRange]]] = []
        self.unfenced_flushes: List[Event] = []
        #: all TX_ADD-logged (node, range) pairs, globally (no tx scoping)
        self.logged: List[Tuple[Optional[int], MemRange]] = []
        self.warnings: List[Warning_] = []

    def _node(self, event: Event) -> Optional[int]:
        if event.cell is None:
            return None
        return event.cell.node.find().node_id

    def _discharge(self, key: Optional[int], rng: MemRange) -> None:
        still = []
        for w, remnants in self.pending:
            if self._node(w) != key:
                still.append((w, remnants))
                continue
            new_remnants: List[MemRange] = []
            for r in remnants:
                if rng.covers(r) is True:
                    continue
                pieces = subtract(r, rng)
                new_remnants.extend(pieces if pieces is not None else [r])
            if new_remnants:
                still.append((w, new_remnants))
        self.pending = still

    def feed(self, event: Event) -> None:
        if event.kind == EV_WRITE:
            self.pending.append((event, [event.cell.range(event.size)]))
        elif event.kind == EV_FLUSH:
            # no model scoping: any covering flush, anywhere, counts
            self._discharge(self._node(event), event.cell.range(event.size))
            self.unfenced_flushes.append(event)
        elif event.kind == EV_TXADD:
            self.logged.append((self._node(event), event.cell.range(event.size)))
        elif event.kind == EV_FENCE:
            self.unfenced_flushes = []
        elif event.kind == EV_TXEND and event.region_kind == REGION_TX:
            # it understands transaction commits (real tools model PMDK's
            # undo log) but nothing about the model's windowing
            for key, rng in self.logged:
                self._discharge(key, rng)
            self.unfenced_flushes = []

    def finish(self) -> List[Warning_]:
        for w, _remnants in self.pending:
            self.warnings.append(Warning_(
                RULE_GENERIC_UNFLUSHED, w.loc, w.fn,
                "write to persistent memory never written back",
                source="static",
            ))
        for f in self.unfenced_flushes:
            self.warnings.append(Warning_(
                RULE_GENERIC_UNDRAINED, f.loc, f.fn,
                "flush never drained by a fence",
                source="static",
            ))
        return self.warnings


class GenericChecker:
    """Runs the baseline over a module's merged traces."""

    def __init__(self, module: Module, collector: Optional[TraceCollector] = None):
        self.module = module
        self._collector = collector

    def run(self) -> Report:
        verify_module(self.module)
        collector = self._collector or TraceCollector(self.module)
        report = Report(self.module.name, "generic")
        for root in analysis_roots(collector.dsa.callgraph):
            for trace in collector.traces_for(root):
                from ..analysis.traces import EV_TRUNCATED

                check = _GenericTraceCheck()
                truncated = False
                for event in trace.events:
                    if event.kind == EV_TRUNCATED:
                        truncated = True
                        break
                    if event.kind == EV_TXEND or event.cell is not None \
                            or event.kind == EV_FENCE:
                        check.feed(event)
                if not truncated:
                    report.extend(check.finish())
        return report
