"""Fix suggestions for reported warnings.

The paper leaves automated bug fixing as future work (§4.3: "Automated bug
fixing is out of the scope of this work, but we wish to explore it").
This module provides the first step: a concrete, per-rule repair
suggestion attached to every warning, phrased in terms of the persistence
primitives of the framework at hand — the same edits the corpus's
``fixed=True`` variants apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .report import Report, Warning_


@dataclass(frozen=True)
class FixSuggestion:
    """A proposed repair for one warning."""

    warning: Warning_
    action: str        # short imperative, e.g. "insert-flush"
    description: str   # the human-readable patch instruction

    def render(self) -> str:
        return f"FIX [{self.action}] {self.warning.loc}: {self.description}"


def _unflushed(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "insert-flush",
        f"flush the written range right after the store at {w.loc} and "
        f"follow it with a persist barrier; inside a durable transaction, "
        f"TX_ADD/undo-log the object *before* modifying it so the commit "
        f"covers the write",
    )


def _multi_write(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "split-persists",
        f"the barrier at {w.loc} makes several independent writes durable "
        f"at once: under strict persistency, flush+fence each write "
        f"individually; if joint durability is intended, declare the "
        f"updates as one epoch/transaction so the model matches the code",
    )


def _missing_barrier(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "insert-barrier",
        f"insert a persist barrier (sfence / pmemobj_drain / "
        f"nvm_persist_barrier) immediately after the flush at {w.loc}, "
        f"before the next persistent operation or transaction begins",
    )


def _epoch_barrier(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "insert-barrier",
        f"issue a persist barrier at the end of the epoch closing at "
        f"{w.loc} so the following epoch's persists are ordered after it",
    )


def _nested_barrier(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "insert-barrier",
        f"the inner transaction ending at {w.loc} must issue a persist "
        f"barrier before returning to the outer transaction "
        f"(PERSISTENT_BARRIER before the inner commit)",
    )


def _mismatch(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "merge-transactions",
        f"the object updated at {w.loc} is initialized/updated across "
        f"consecutive persist epochs; merge them into one atomic "
        f"transaction covering all of its fields (or document that the "
        f"fields are genuinely independent)",
    )


def _strand(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "order-strands",
        f"the strands racing at {w.loc} have a data dependence: place the "
        f"accesses in the same strand, or order the strands with an "
        f"explicit persist barrier between them",
    )


def _flush_unmodified(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "narrow-flush",
        f"narrow the flush at {w.loc} to the byte range actually modified "
        f"(flush the field, not the object); if nothing was modified, "
        f"delete the flush",
    )


def _redundant_flush(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "remove-flush",
        f"delete the write-back at {w.loc}: the same data was already "
        f"flushed and not modified since (an extra write-back costs 2-4x "
        f"latency and doubles NVM write traffic for the line)",
    )


def _multi_persist(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "remove-log",
        f"remove the repeated log/flush at {w.loc}: the object is already "
        f"covered by this transaction's log; logging it again copies "
        f"unmodified fields into the undo log",
    )


def _empty_tx(w: Warning_) -> FixSuggestion:
    return FixSuggestion(
        w, "remove-tx",
        f"the durable transaction at {w.loc} contains no persistent write "
        f"on this path: drop the transaction for read-only work, or move "
        f"the begin/commit inside the branch that actually writes",
    )


_SUGGESTERS: Dict[str, Callable[[Warning_], FixSuggestion]] = {
    "strict.unflushed-write": _unflushed,
    "epoch.unflushed-write": _unflushed,
    "strict.multi-write-barrier": _multi_write,
    "strict.missing-barrier": _missing_barrier,
    "epoch.missing-barrier": _epoch_barrier,
    "epoch.nested-missing-barrier": _nested_barrier,
    "epoch.semantic-mismatch": _mismatch,
    "strand.dependence": _strand,
    "perf.flush-unmodified": _flush_unmodified,
    "perf.redundant-flush": _redundant_flush,
    "perf.multi-persist-tx": _multi_persist,
    "perf.empty-durable-tx": _empty_tx,
}


def suggest_fix(warning: Warning_) -> FixSuggestion:
    """The repair suggestion for one warning."""
    suggester = _SUGGESTERS.get(warning.rule_id)
    if suggester is None:
        return FixSuggestion(
            warning, "review",
            f"no automated suggestion for rule {warning.rule_id}; review "
            f"the persist operations around {warning.loc} manually",
        )
    return suggester(warning)


def suggest_fixes(report: Report) -> List[FixSuggestion]:
    """Suggestions for every warning in a report, in report order."""
    return [suggest_fix(w) for w in report.warnings()]
