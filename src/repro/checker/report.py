"""Warning reports produced by the static and dynamic checkers.

DeepMC "will create a detailed report of warnings, which shows the line
numbers of the bugs" (§4.3). Warnings are deduplicated by (rule, location)
across traces; the report renders grouped by file, matching the layout of
the paper's bug tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..ir.sourceloc import SourceLoc
from ..models import CATEGORY_PERFORMANCE, CATEGORY_VIOLATION, RULES_BY_ID


@dataclass(frozen=True)
class Warning_:
    """One reported potential persistency bug."""

    rule_id: str
    loc: SourceLoc
    fn: str
    message: str
    #: "static" or "dynamic"
    source: str = "static"

    @property
    def category(self) -> str:
        return RULES_BY_ID[self.rule_id].category

    @property
    def title(self) -> str:
        return RULES_BY_ID[self.rule_id].title

    def key(self) -> Tuple[str, str, int]:
        return (self.rule_id, self.loc.file, self.loc.line)

    def render(self) -> str:
        tag = "VIOLATION" if self.category == CATEGORY_VIOLATION else "PERF"
        return f"WARNING [{tag}] {self.loc}: {self.title} — {self.message} (in @{self.fn}, {self.rule_id}, {self.source})"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "category": self.category,
            "title": self.title,
            "file": self.loc.file,
            "line": self.loc.line,
            "fn": self.fn,
            "message": self.message,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Warning_":
        """Inverse of :meth:`to_dict` (category/title are derived)."""
        return cls(
            rule_id=data["rule"],
            loc=SourceLoc(data["file"], data["line"], data.get("col", 0)),
            fn=data.get("fn", ""),
            message=data.get("message", ""),
            source=data.get("source", "static"),
        )


class Report:
    """A deduplicated collection of warnings."""

    def __init__(self, module_name: str = "", model: str = ""):
        self.module_name = module_name
        self.model = model
        self._warnings: Dict[Tuple[str, str, int], Warning_] = {}

    def add(self, warning: Warning_) -> None:
        self._warnings.setdefault(warning.key(), warning)

    def extend(self, warnings: Iterable[Warning_]) -> None:
        for w in warnings:
            self.add(w)

    def merge(self, other: "Report") -> None:
        self.extend(other.warnings())

    def warnings(self) -> List[Warning_]:
        return sorted(
            self._warnings.values(),
            key=lambda w: (w.loc.file, w.loc.line, w.rule_id),
        )

    def violations(self) -> List[Warning_]:
        return [w for w in self.warnings() if w.category == CATEGORY_VIOLATION]

    def performance(self) -> List[Warning_]:
        return [w for w in self.warnings() if w.category == CATEGORY_PERFORMANCE]

    def by_rule(self) -> Dict[str, List[Warning_]]:
        out: Dict[str, List[Warning_]] = {}
        for w in self.warnings():
            out.setdefault(w.rule_id, []).append(w)
        return out

    def by_file(self) -> Dict[str, List[Warning_]]:
        out: Dict[str, List[Warning_]] = {}
        for w in self.warnings():
            out.setdefault(w.loc.file, []).append(w)
        return out

    def has(self, rule_id: str, file: str, line: int) -> bool:
        return (rule_id, file, line) in self._warnings

    def at(self, file: str, line: int) -> List[Warning_]:
        return [
            w for w in self.warnings()
            if w.loc.file == file and w.loc.line == line
        ]

    def __len__(self) -> int:
        return len(self._warnings)

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable view: the ``--format json`` payload that CI
        and scripts consume instead of screen-scraping :meth:`render`."""
        return {
            "module": self.module_name,
            "model": self.model,
            "count": len(self),
            "violations": len(self.violations()),
            "performance": len(self.performance()),
            "warnings": [w.to_dict() for w in self.warnings()],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        # sorted like every other machine-readable surface (fuzz, chaos,
        # crashsim, bench), so the byte layout never depends on dict
        # construction order
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Report":
        """Inverse of :meth:`to_dict` — how cached and worker-produced
        reports are rehydrated in the parent process."""
        report = cls(data.get("module", ""), data.get("model", ""))
        report.extend(Warning_.from_dict(w) for w in data.get("warnings", ()))
        return report

    def render(self) -> str:
        lines = [
            f"DeepMC report for module {self.module_name!r} "
            f"(model: {self.model}) — {len(self)} warning(s)"
        ]
        for file, warnings in sorted(self.by_file().items()):
            lines.append(f"\n{file}:")
            for w in warnings:
                lines.append(f"  {w.render()}")
        return "\n".join(lines)
