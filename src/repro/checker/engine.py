"""The static checker engine (step 4 of Figure 8).

Pipeline: DSA → trace collection → rule application, exactly as in the
paper: traces are collected per function, merged bottom-up at call sites,
and the model's checking rules are applied to every merged trace of every
*root* function (an entry point nobody else calls), so each rule sees the
"entire trace of the NVM program". Warnings are deduplicated by
(rule, file, line).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..analysis.callgraph import CallGraph
from ..analysis.dsa import DSAResult, run_dsa
from ..analysis.traces import Trace, TraceCollector
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..models import PersistencyModel, get_model
from .report import Report
from .rules import CheckContext, build_rules


def analysis_roots(cg: CallGraph) -> List[str]:
    """Entry points to check: uncalled functions, plus a representative of
    any call-graph cycle unreachable from them.

    Functions carrying a persist annotation are excluded: they are
    framework internals whose persistence behaviour the user *declared*
    (e.g. ``pmemobj_flush`` is fence-less by design); DeepMC trusts the
    annotation interface rather than second-guessing the bodies.
    """
    annotations = cg.module.annotations
    roots = [n for n in cg.roots() if not annotations.is_annotated(n)]
    reachable: Set[str] = set()
    work = list(roots)
    while work:
        fn = work.pop()
        if fn in reachable:
            continue
        reachable.add(fn)
        work.extend(cg.callees.get(fn, ()))
    for name in sorted(cg.callees):
        if name not in reachable:
            if not annotations.is_annotated(name):
                roots.append(name)
            work = [name]
            while work:
                f = work.pop()
                if f in reachable:
                    continue
                reachable.add(f)
                work.extend(cg.callees.get(f, ()))
    return roots


@dataclass
class CheckTimings:
    """Wall-clock breakdown of one checker run (feeds Table 9)."""

    verify_s: float = 0.0
    dsa_s: float = 0.0
    traces_s: float = 0.0
    rules_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.verify_s + self.dsa_s + self.traces_s + self.rules_s


class StaticChecker:
    """Applies the selected model's rules to a module's merged traces."""

    def __init__(
        self,
        module: Module,
        model: Optional[str] = None,
        collector: Optional[TraceCollector] = None,
        verify: bool = True,
        **collector_opts,
    ):
        self.module = module
        self.model: PersistencyModel = get_model(model or module.persistency_model)
        self._collector = collector
        self._collector_opts = collector_opts
        self._verify = verify
        self.timings = CheckTimings()
        self.traces_checked = 0

    def run(self) -> Report:
        t0 = time.perf_counter()
        if self._verify:
            verify_module(self.module)
        t1 = time.perf_counter()
        self.timings.verify_s = t1 - t0

        if self._collector is None:
            dsa = run_dsa(
                self.module,
                interprocedural=self._collector_opts.get("interprocedural", True),
            )
            t2 = time.perf_counter()
            self.timings.dsa_s = t2 - t1
            self._collector = TraceCollector(
                self.module, dsa, **self._collector_opts
            )
        else:
            t2 = time.perf_counter()

        if self._collector.interprocedural:
            roots = analysis_roots(self._collector.dsa.callgraph)
        else:
            # Ablation: every function is checked in isolation.
            annotations = self.module.annotations
            roots = [
                fn.name for fn in self.module.defined_functions()
                if not annotations.is_annotated(fn.name)
            ]
        traces: Dict[str, List[Trace]] = {
            root: self._collector.traces_for(root) for root in roots
        }
        t3 = time.perf_counter()
        self.timings.traces_s = t3 - t2

        report = Report(self.module.name, self.model.name)
        factories = build_rules(self.model)
        for root, root_traces in traces.items():
            ctx = CheckContext(self.module, self.model, root)
            for trace in root_traces:
                self.traces_checked += 1
                for factory in factories:
                    rule = factory()
                    report.extend(rule.check(trace, ctx))
        self.timings.rules_s = time.perf_counter() - t3
        return report
