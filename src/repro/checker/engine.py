"""The static checker engine (step 4 of Figure 8).

Pipeline: DSA → trace collection → rule application, exactly as in the
paper: traces are collected per function, merged bottom-up at call sites,
and the model's checking rules are applied to every merged trace of every
*root* function (an entry point nobody else calls), so each rule sees the
"entire trace of the NVM program". Warnings are deduplicated by
(rule, file, line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..analysis.callgraph import CallGraph
from ..analysis.dsa import DSAResult, run_dsa
from ..analysis.traces import Trace, TraceCollector
from ..deadline import Deadline
from ..errors import DeadlineExceeded
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..models import PersistencyModel, get_model
from ..telemetry import Telemetry, Tracer
from .report import Report
from .rules import CheckContext, build_rules


def analysis_roots(cg: CallGraph) -> List[str]:
    """Entry points to check: uncalled functions, plus a representative of
    any call-graph cycle unreachable from them.

    Functions carrying a persist annotation are excluded: they are
    framework internals whose persistence behaviour the user *declared*
    (e.g. ``pmemobj_flush`` is fence-less by design); DeepMC trusts the
    annotation interface rather than second-guessing the bodies.
    """
    annotations = cg.module.annotations
    roots = [n for n in cg.roots() if not annotations.is_annotated(n)]
    reachable: Set[str] = set()
    work = list(roots)
    while work:
        fn = work.pop()
        if fn in reachable:
            continue
        reachable.add(fn)
        work.extend(cg.callees.get(fn, ()))
    for name in sorted(cg.callees):
        if name not in reachable:
            if not annotations.is_annotated(name):
                roots.append(name)
            work = [name]
            while work:
                f = work.pop()
                if f in reachable:
                    continue
                reachable.add(f)
                work.extend(cg.callees.get(f, ()))
    return roots


@dataclass
class CheckTimings:
    """Wall-clock breakdown of one checker run (feeds Table 9).

    Populated from the checker's span tree: one field per pipeline phase.
    When a pre-built :class:`TraceCollector` is passed to the checker,
    ``dsa_s`` reports the DSA time the collector spent in its own
    constructor (its ``dsa_build_s``) so the breakdown stays consistent
    with who actually did the work.
    """

    verify_s: float = 0.0
    dsa_s: float = 0.0
    traces_s: float = 0.0
    rules_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.verify_s + self.dsa_s + self.traces_s + self.rules_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "verify_s": self.verify_s,
            "dsa_s": self.dsa_s,
            "traces_s": self.traces_s,
            "rules_s": self.rules_s,
            "total_s": self.total_s,
        }


class StaticChecker:
    """Applies the selected model's rules to a module's merged traces."""

    def __init__(
        self,
        module: Module,
        model: Optional[str] = None,
        collector: Optional[TraceCollector] = None,
        verify: bool = True,
        telemetry: Optional[Telemetry] = None,
        deadline: Optional[Deadline] = None,
        **collector_opts,
    ):
        self.module = module
        self.model: PersistencyModel = get_model(model or module.persistency_model)
        self._collector = collector
        self._collector_opts = collector_opts
        self._verify = verify
        self.telemetry = telemetry
        # Cooperative budget: polled at phase boundaries and between
        # per-root rule sweeps. A static report has no meaningful partial
        # (a missing rule pass looks like a clean program), so expiry
        # raises DeadlineExceeded instead of degrading.
        self._deadline = deadline
        # The checker always times its handful of phases with its own
        # tracer when no telemetry is attached: span count is O(phases),
        # so the cost is noise, and CheckTimings stays populated.
        self._tracer: Tracer = telemetry.tracer if telemetry is not None else Tracer()
        self.timings = CheckTimings()
        self.traces_checked = 0
        #: root span of the most recent run (None before the first run
        #: or when the attached tracer is disabled)
        self.last_span = None

    @property
    def collector(self) -> Optional[TraceCollector]:
        """The trace collector of the most recent run (carries the DSA
        result); None before the first run unless one was passed in."""
        return self._collector

    def _check_deadline(self, stage: str) -> None:
        if self._deadline is not None and self._deadline.expired():
            raise DeadlineExceeded(f"check.{stage}")

    def run(self) -> Report:
        tracer = self._tracer
        timings = CheckTimings()
        self.traces_checked = 0

        with tracer.span("check", module=self.module.name,
                         model=self.model.name) as root_span:
            self._check_deadline("verify")
            with tracer.span("verify") as sp:
                if self._verify:
                    verify_module(self.module)
            timings.verify_s = sp.duration_s

            self._check_deadline("dsa")
            if self._collector is None:
                with tracer.span("dsa") as sp:
                    dsa = run_dsa(
                        self.module,
                        interprocedural=self._collector_opts.get(
                            "interprocedural", True),
                        tracer=tracer,
                        metrics=(self.telemetry.metrics
                                 if self.telemetry is not None else None),
                    )
                timings.dsa_s = sp.duration_s
                self._collector = TraceCollector(
                    self.module, dsa, tracer=tracer, **self._collector_opts
                )
            else:
                # A pre-built collector ran its DSA in its own
                # constructor; charge that time instead of silently
                # reporting zero (it is 0.0 when the collector was handed
                # a ready DSAResult — no DSA work happened anywhere).
                timings.dsa_s = self._collector.dsa_build_s

            if self._collector.interprocedural:
                roots = analysis_roots(self._collector.dsa.callgraph)
            else:
                # Ablation: every function is checked in isolation.
                annotations = self.module.annotations
                roots = [
                    fn.name for fn in self.module.defined_functions()
                    if not annotations.is_annotated(fn.name)
                ]
            self._check_deadline("traces")
            with tracer.span("traces", roots=len(roots)) as sp:
                traces: Dict[str, List[Trace]] = {}
                for root in roots:
                    self._check_deadline("traces")
                    traces[root] = self._collector.traces_for(root)
            timings.traces_s = sp.duration_s

            report = Report(self.module.name, self.model.name)
            with tracer.span("rules") as sp:
                factories = build_rules(self.model)
                for root, root_traces in traces.items():
                    self._check_deadline("rules")
                    ctx = CheckContext(self.module, self.model, root)
                    for trace in root_traces:
                        self.traces_checked += 1
                        for factory in factories:
                            rule = factory()
                            report.extend(rule.check(trace, ctx))
                sp.set("traces_checked", self.traces_checked)
                sp.set("warnings", len(report))
            timings.rules_s = sp.duration_s
            root_span.set("warnings", len(report))
            root_span.set("traces_checked", self.traces_checked)

        self.timings = timings
        self.last_span = root_span if tracer.enabled else None
        if self.telemetry is not None:
            self._publish(report)
        return report

    def _publish(self, report: Report) -> None:
        """Push this run's results into the attached metrics registry."""
        tel = self.telemetry
        assert tel is not None
        tel.metrics.counter("checker.runs").inc()
        tel.metrics.counter("checker.traces_checked").inc(self.traces_checked)
        tel.metrics.counter("checker.warnings").inc(len(report))
        tel.metrics.publish("checker.timings", self.timings.as_dict())
        tel.event(
            "check_report",
            module=self.module.name,
            model=self.model.name,
            warnings=len(report),
            traces_checked=self.traces_checked,
            total_s=round(self.timings.total_s, 6),
        )
