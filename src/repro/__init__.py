"""DeepMC reproduction: detecting deep memory persistency bugs in NVM programs.

Reproduces Reidys & Huang, *Understanding and Detecting Deep Memory
Persistency Bugs in NVM Programs with DeepMC* (PPoPP 2022): a persistency-
model-aware checking toolkit combining static analysis (CFG/CG traces,
field-sensitive Data Structure Analysis) with dynamic happens-before
checking, applied to mini re-implementations of PMDK, PMFS, NVM-Direct and
Mnemosyne and to the paper's bug corpus.

Top-level convenience API::

    from repro import check_module
    report = check_module(module)          # static checking
    print(report.render())
"""

__version__ = "1.0.0"


def check_module(module, model=None):
    """Run DeepMC's static checker on a module.

    ``model`` overrides the module's compile-flag persistency model.
    Returns a :class:`repro.checker.report.Report`.
    """
    from .checker.engine import StaticChecker

    return StaticChecker(module, model=model).run()


def check_dynamic(module, entry="main", model=None, **kwargs):
    """Instrument, execute, and dynamically check a module.

    Returns ``(report, exec_result)``.
    """
    from .dynamic.checker import DynamicChecker

    checker = DynamicChecker(module, model=model)
    return checker.run(entry=entry, **kwargs)
