"""Static analyses: CFG, call graph, DSA/DSG, symbolic ranges, traces."""

from .callgraph import CallGraph
from .cfg import CFG
from .dsa import DSAResult, run_dsa
from .ranges import MemRange, SymOffset, TriBool, union_size
from .traces import (
    EV_FENCE,
    EV_FLUSH,
    EV_LOAD,
    EV_SPAWN,
    EV_TXADD,
    EV_TXBEGIN,
    EV_TXEND,
    EV_WRITE,
    Event,
    Trace,
    TraceCollector,
)

__all__ = [
    "CFG",
    "CallGraph",
    "DSAResult",
    "EV_FENCE",
    "EV_FLUSH",
    "EV_LOAD",
    "EV_SPAWN",
    "EV_TXADD",
    "EV_TXBEGIN",
    "EV_TXEND",
    "EV_WRITE",
    "Event",
    "MemRange",
    "SymOffset",
    "Trace",
    "TraceCollector",
    "TriBool",
    "run_dsa",
    "union_size",
]
