"""Call graph construction and post-order traversal.

DeepMC traverses the call graph in post-order — callees before callers —
both in the DSA bottom-up phase and when merging callee traces into call
sites (§4.2, §4.3). Recursion shows up as SCCs; Tarjan's algorithm gives
us the condensation so post-order is well defined.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..ir import instructions as ins
from ..ir.function import Function
from ..ir.module import Module


class CallGraph:
    """Name-keyed call graph of a module.

    Edges lead only to functions *defined* in the module; annotated
    framework entry points and builtins are summarized by the annotation
    registry instead of being traversed.
    """

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        self.call_sites: Dict[str, List[ins.Instruction]] = {}
        for fn in module.defined_functions():
            self.callees.setdefault(fn.name, set())
            self.callers.setdefault(fn.name, set())
        for fn in module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, (ins.Call, ins.Spawn)):
                    target = inst.callee
                    self.call_sites.setdefault(fn.name, []).append(inst)
                    callee_fn = module.get_function(target)
                    if callee_fn is not None and not callee_fn.is_declaration():
                        self.callees[fn.name].add(target)
                        self.callers.setdefault(target, set()).add(fn.name)

    # -- SCC condensation ----------------------------------------------------
    def sccs(self) -> List[List[str]]:
        """Tarjan SCCs, returned in reverse topological order
        (callee SCCs before caller SCCs)."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        result: List[List[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            # Iterative Tarjan to dodge recursion limits on deep graphs.
            work = [(v, iter(sorted(self.callees.get(v, ()))))]
            index[v] = lowlink[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = lowlink[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(self.callees.get(w, ())))))
                        advanced = True
                        break
                    elif w in on_stack:
                        lowlink[node] = min(lowlink[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    result.append(comp)

        for name in sorted(self.callees):
            if name not in index:
                strongconnect(name)
        return result

    def post_order(self) -> List[str]:
        """Function names, callees before callers (SCC members adjacent)."""
        order: List[str] = []
        for comp in self.sccs():
            order.extend(sorted(comp))
        return order

    def is_recursive(self, name: str) -> bool:
        for comp in self.sccs():
            if name in comp:
                return len(comp) > 1 or name in self.callees.get(name, ())
        return False

    def roots(self) -> List[str]:
        """Functions nobody in the module calls (analysis entry points)."""
        return sorted(
            n for n in self.callees if not self.callers.get(n)
        )
