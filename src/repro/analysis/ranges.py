"""Symbolic byte offsets and memory ranges.

The static checker reasons about *which bytes of which object* an
operation touches. Offsets are small symbolic expressions:
``const + Σ scale_i * idx_i`` where each ``idx_i`` is an opaque runtime
value (an IR value identity). Two offsets are directly comparable when
they share the same symbolic part — that is the "symbolic analysis for
memory disambiguation" the paper pairs with DSA (§5.4); offsets with
different symbolic parts yield three-valued *unknown* answers, which the
checker treats conservatively per rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Three-valued logic: True / False / None (unknown).
TriBool = Optional[bool]


@dataclass(frozen=True)
class SymOffset:
    """``const + Σ scale*term`` with terms identified by opaque ints."""

    terms: Tuple[Tuple[int, int], ...] = ()  # sorted (term_id, scale), scale != 0
    const: int = 0

    @staticmethod
    def of(const: int) -> "SymOffset":
        return SymOffset((), const)

    def add_const(self, delta: int) -> "SymOffset":
        return SymOffset(self.terms, self.const + delta)

    def add_term(self, term_id: int, scale: int) -> "SymOffset":
        if scale == 0:
            return self
        combined: Dict[int, int] = dict(self.terms)
        combined[term_id] = combined.get(term_id, 0) + scale
        terms = tuple(sorted((t, s) for t, s in combined.items() if s != 0))
        return SymOffset(terms, self.const)

    def is_concrete(self) -> bool:
        return not self.terms

    def comparable(self, other: "SymOffset") -> bool:
        """True when ``self - other`` is a known constant."""
        return self.terms == other.terms

    def delta(self, other: "SymOffset") -> Optional[int]:
        """``self - other`` when comparable, else None."""
        if self.comparable(other):
            return self.const - other.const
        return None

    def __str__(self) -> str:
        parts = [str(self.const)] if (self.const or not self.terms) else []
        for term_id, scale in self.terms:
            parts.append(f"{scale}*v{term_id % 10000}")
        return "+".join(parts)


@dataclass(frozen=True)
class MemRange:
    """A byte range ``[offset, offset+size)``; ``size=None`` is unknown."""

    offset: SymOffset
    size: Optional[int]

    @staticmethod
    def concrete(start: int, size: Optional[int]) -> "MemRange":
        return MemRange(SymOffset.of(start), size)

    def end_const(self) -> Optional[int]:
        if self.size is None:
            return None
        return self.offset.const + self.size

    def overlaps(self, other: "MemRange") -> TriBool:
        """Do the two ranges share at least one byte?"""
        d = other.offset.delta(self.offset)  # other.start - self.start
        if d is None:
            return None  # different symbolic bases: unknown
        # self spans [0, self.size), other spans [d, d+other.size)
        if self.size is not None and d >= self.size:
            return False
        if other.size is not None and d + other.size <= 0:
            return False
        if self.size is None or other.size is None:
            # Same base, at least one unknown extent: overlap is possible
            # but not certain unless starts coincide.
            if d == 0:
                return True
            return None
        return True  # both bounded and neither disjointness test fired

    def covers(self, other: "MemRange") -> TriBool:
        """Is ``other`` entirely inside ``self``?"""
        d = other.offset.delta(self.offset)
        if d is None:
            return None
        if d < 0:
            return False
        if self.size is None:
            return None if other.size is None or d > 0 else (d == 0 or None)
        if other.size is None:
            return None
        return d + other.size <= self.size

    def same_range(self, other: "MemRange") -> TriBool:
        d = other.offset.delta(self.offset)
        if d is None:
            return None
        if d != 0:
            return False
        if self.size is None or other.size is None:
            return None
        return self.size == other.size

    def __str__(self) -> str:
        size = "?" if self.size is None else str(self.size)
        return f"[{self.offset}, +{size})"


def subtract(a: MemRange, b: MemRange) -> Optional[list]:
    """``a - b`` as a list of remnant ranges, or None when not computable.

    Computable requires comparable offsets and concrete sizes. An empty
    list means ``b`` covers ``a`` entirely.
    """
    d = b.offset.delta(a.offset)  # b.start - a.start
    if d is None or a.size is None or b.size is None:
        return None
    cut_start = max(d, 0)
    cut_end = min(d + b.size, a.size)
    if cut_end <= cut_start:
        return [a]  # disjoint
    remnants = []
    if cut_start > 0:
        remnants.append(MemRange(a.offset, cut_start))
    if cut_end < a.size:
        remnants.append(MemRange(a.offset.add_const(cut_end), a.size - cut_end))
    return remnants


def union_size(ranges) -> Optional[int]:
    """Total bytes covered by concrete ranges; None if any is symbolic."""
    intervals = []
    for r in ranges:
        if not r.offset.is_concrete() or r.size is None:
            return None
        intervals.append((r.offset.const, r.offset.const + r.size))
    intervals.sort()
    total = 0
    cur_start: Optional[int] = None
    cur_end = 0
    for start, end in intervals:
        if cur_start is None or start > cur_end:
            if cur_start is not None:
                total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    if cur_start is not None:
        total += cur_end - cur_start
    return total
