"""Control-flow graph utilities over IR functions.

Basic blocks already carry successor labels; this module adds the derived
structure DeepMC's trace collector needs: predecessor maps, reverse
post-order, reachability, loop-header detection (back edges), and simple
iterative dominators.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError
from ..ir.basicblock import BasicBlock
from ..ir.function import Function


class CFG:
    """Derived control-flow structure of one function."""

    def __init__(self, fn: Function):
        if fn.is_declaration():
            raise AnalysisError(f"cannot build CFG of declaration @{fn.name}")
        self.fn = fn
        self.succs: Dict[str, List[str]] = {}
        self.preds: Dict[str, List[str]] = {}
        for block in fn.blocks:
            self.succs[block.label] = list(block.successors_labels())
            self.preds.setdefault(block.label, [])
        for label, targets in self.succs.items():
            for t in targets:
                self.preds.setdefault(t, []).append(label)
        self._rpo: Optional[List[str]] = None
        self._back_edges: Optional[Set[Tuple[str, str]]] = None

    # -- orderings ---------------------------------------------------------
    def reverse_post_order(self) -> List[str]:
        if self._rpo is None:
            seen: Set[str] = set()
            order: List[str] = []

            def dfs(label: str) -> None:
                stack = [(label, iter(self.succs.get(label, ())))]
                seen.add(label)
                while stack:
                    node, it = stack[-1]
                    advanced = False
                    for nxt in it:
                        if nxt not in seen:
                            seen.add(nxt)
                            stack.append((nxt, iter(self.succs.get(nxt, ()))))
                            advanced = True
                            break
                    if not advanced:
                        order.append(node)
                        stack.pop()

            dfs(self.fn.entry.label)
            order.reverse()
            self._rpo = order
        return list(self._rpo)

    def reachable(self) -> Set[str]:
        return set(self.reverse_post_order())

    # -- loops -----------------------------------------------------------------
    def back_edges(self) -> Set[Tuple[str, str]]:
        """Edges (src, dst) where dst is an ancestor in the DFS tree."""
        if self._back_edges is None:
            edges: Set[Tuple[str, str]] = set()
            color: Dict[str, int] = {}  # 0 white, 1 grey, 2 black

            def dfs(label: str) -> None:
                stack: List[Tuple[str, int]] = [(label, 0)]
                color[label] = 1
                while stack:
                    node, i = stack[-1]
                    targets = self.succs.get(node, [])
                    if i < len(targets):
                        stack[-1] = (node, i + 1)
                        nxt = targets[i]
                        c = color.get(nxt, 0)
                        if c == 1:
                            edges.add((node, nxt))
                        elif c == 0:
                            color[nxt] = 1
                            stack.append((nxt, 0))
                    else:
                        color[node] = 2
                        stack.pop()

            dfs(self.fn.entry.label)
            self._back_edges = edges
        return set(self._back_edges)

    def loop_headers(self) -> Set[str]:
        return {dst for _src, dst in self.back_edges()}

    # -- dominators ----------------------------------------------------------------
    def dominators(self) -> Dict[str, Set[str]]:
        """Classic iterative dataflow dominators (fine at our CFG sizes)."""
        rpo = self.reverse_post_order()
        all_nodes = set(rpo)
        dom: Dict[str, Set[str]] = {n: set(all_nodes) for n in rpo}
        entry = self.fn.entry.label
        dom[entry] = {entry}
        changed = True
        while changed:
            changed = False
            for n in rpo:
                if n == entry:
                    continue
                preds = [p for p in self.preds.get(n, []) if p in all_nodes]
                if not preds:
                    new = {n}
                else:
                    new = set.intersection(*(dom[p] for p in preds)) | {n}
                if new != dom[n]:
                    dom[n] = new
                    changed = True
        return dom

    def block(self, label: str) -> BasicBlock:
        return self.fn.block(label)
