"""Trace collection (§4.3).

A *trace* is one control-flow path's sequence of persistence-relevant
events: persistent writes, flushes, fences, region begin/end markers, and
undo-log additions. Collection follows the paper:

* per-function paths are enumerated by DFS over the CFG, bounded in loop
  iterations (10 by default) and total paths, with **persistent-op
  priority** — paths touching persistent state are kept first;
* call sites to module-defined functions are then *merged*: the callee's
  traces are spliced in, with every callee event's DSG cell translated
  into the caller's node space through the bottom-up clone maps
  (Figure 11); recursion is cut at depth 5;
* calls to *annotated* framework entry points expand into their declared
  abstract effects instead of being inlined.

Only events on persistent (or provenance-unknown) objects are kept, which
is what keeps traces small (§4.3 "the DSG limits traces to only operations
involving persistent memory").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..ir import instructions as ins
from ..ir import types as ty
from ..ir.annotations import (
    EFFECT_FENCE,
    EFFECT_FLUSH,
    EFFECT_LOG,
    EFFECT_TX_BEGIN,
    EFFECT_TX_END,
    EFFECT_WRITE,
)
from ..ir.function import Function
from ..ir.module import Module
from ..ir.sourceloc import SourceLoc
from ..ir.values import Constant, Value
from .cfg import CFG
from .dsa import Cell, DSAResult, run_dsa
from .dsa.graph import F_ARG, F_HEAP, F_PHEAP, F_STACK, F_UNKNOWN

# Event kinds.
EV_WRITE = "write"
EV_LOAD = "load"
EV_FLUSH = "flush"
EV_FENCE = "fence"
EV_TXBEGIN = "txbegin"
EV_TXEND = "txend"
EV_TXADD = "txadd"
EV_SPAWN = "spawn"
EV_CALL = "call"  # placeholder, removed by merging
EV_TRUNCATED = "truncated"  # path was cut (loop/size bound); no clean end
EV_ALLOC = "alloc"  # fresh persistent allocation (resets per-object state)


@dataclass(frozen=True)
class Event:
    """One persistence-relevant operation in a trace."""

    kind: str
    loc: SourceLoc
    fn: str
    cell: Optional[Cell] = None
    size: Optional[int] = None
    region_kind: str = ""
    region_label: str = ""
    #: name of the annotated framework function that produced this event
    via: str = ""
    #: call instruction (only for EV_CALL placeholders)
    call_inst: Optional[ins.Instruction] = None

    def is_memory(self) -> bool:
        return self.kind in (EV_WRITE, EV_LOAD, EV_FLUSH, EV_TXADD)

    def __str__(self) -> str:
        bits = [self.kind]
        if self.cell is not None:
            bits.append(str(self.cell))
        if self.size is not None:
            bits.append(f"+{self.size}")
        if self.region_kind:
            bits.append(self.region_kind)
        bits.append(f"@{self.loc}")
        return " ".join(bits)


@dataclass
class Trace:
    """One merged control-flow path of events, in program order."""

    root: str
    events: List[Event] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def persistent_ops(self) -> int:
        return sum(1 for e in self.events if e.is_memory())

    def render(self) -> str:
        return "\n".join(f"  {e}" for e in self.events)


class TraceCollector:
    """Collects per-function traces and merges them interprocedurally."""

    def __init__(
        self,
        module: Module,
        dsa: Optional[DSAResult] = None,
        loop_limit: int = 10,
        recursion_limit: int = 5,
        max_paths: int = 48,
        max_merged: int = 96,
        max_events: int = 20000,
        include_loads: bool = True,
        field_sensitive: bool = True,
        interprocedural: bool = True,
        tracer=None,
    ):
        from ..telemetry import NULL_TRACER

        self.module = module
        self._tracer = tracer if tracer is not None else NULL_TRACER
        build_t0 = time.perf_counter()
        self.dsa = dsa if dsa is not None else run_dsa(
            module, interprocedural=interprocedural, tracer=self._tracer
        )
        #: wall time this collector itself spent building the DSA (0.0
        #: when a ready DSAResult was passed in); the checker engine reads
        #: this so CheckTimings.dsa_s is consistent for pre-built
        #: collectors.
        self.dsa_build_s = (
            0.0 if dsa is not None else time.perf_counter() - build_t0
        )
        #: ablation knob: False analyzes each function in isolation —
        #: call sites are dropped instead of merged (no Figure 11).
        self.interprocedural = interprocedural
        self.loop_limit = loop_limit
        self.recursion_limit = recursion_limit
        self.max_paths = max_paths
        self.max_merged = max_merged
        self.max_events = max_events
        self.include_loads = include_loads
        #: ablation knob: False degrades every event to whole-object
        #: granularity, emulating a field-INsensitive alias analysis
        #: (Andersen/Steensgaard-class, §4.2); used to reproduce the
        #: paper's claim that field sensitivity is necessary.
        self.field_sensitive = field_sensitive
        self._local_cache: Dict[str, List[List[Event]]] = {}
        self._merged_cache: Dict[str, List[List[Event]]] = {}

    # -- public API -----------------------------------------------------------
    def traces_for(self, fn_name: str) -> List[Trace]:
        """Fully merged traces rooted at ``fn_name``."""
        with self._tracer.span("traces.root", root=fn_name) as sp:
            merged = self._merged(fn_name, depth={})
            sp.set("traces", len(merged))
            sp.set("events", sum(len(events) for events in merged))
        return [Trace(fn_name, events) for events in merged]

    def all_root_traces(self) -> Dict[str, List[Trace]]:
        """Merged traces for every defined function (deduped warnings make
        overlapping coverage harmless; per-function roots maximize it)."""
        return {
            fn.name: self.traces_for(fn.name)
            for fn in self.module.defined_functions()
        }

    # -- local path enumeration -----------------------------------------------
    def _local_paths(self, fn_name: str) -> List[List[Event]]:
        if fn_name in self._local_cache:
            return self._local_cache[fn_name]
        fn = self.module.function(fn_name)
        if fn.is_declaration():
            self._local_cache[fn_name] = [[]]
            return self._local_cache[fn_name]
        cfg = CFG(fn)
        graph = self.dsa.graph(fn_name)
        paths: List[List[Event]] = []
        # Iterative DFS over block paths with bounded revisits per block.
        # Each stack entry: (block label, visit counts dict, events so far)
        stack: List[Tuple[str, Dict[str, int], List[Event]]] = [
            (fn.entry.label, {}, [])
        ]
        budget = self.max_paths * 8  # expansion budget before cutting off
        while stack and budget > 0:
            budget -= 1
            label, counts, events = stack.pop()
            counts = dict(counts)
            counts[label] = counts.get(label, 0) + 1
            if counts[label] > self.loop_limit:
                paths.append(events + [self._truncation_marker(fn)])
                continue
            block_events = self._block_events(fn, graph, label)
            events = events + block_events
            if len(events) > self.max_events:
                events = events[: self.max_events]
                paths.append(events + [self._truncation_marker(fn)])
                continue
            succs = cfg.succs.get(label, [])
            if not succs:
                paths.append(events)
                continue
            # Push in reverse so the first successor is explored first.
            for nxt in reversed(succs):
                stack.append((nxt, counts, events))
            if len(paths) >= self.max_paths:
                break
        # Persistent-op priority: keep the paths that touch the most
        # persistent state, then the shortest (stable for determinism).
        paths.sort(key=lambda evs: (-sum(1 for e in evs if e.is_memory()), len(evs)))
        paths = paths[: self.max_paths] or [[]]
        self._local_cache[fn_name] = paths
        return paths

    def _truncation_marker(self, fn: Function) -> Event:
        from ..ir.sourceloc import UNKNOWN_LOC

        return Event(EV_TRUNCATED, UNKNOWN_LOC, fn.name)

    def _block_events(self, fn: Function, graph, label: str) -> List[Event]:
        out: List[Event] = []
        for inst in fn.block(label).instructions:
            events = self._events_of(fn, graph, inst)
            if not self.field_sensitive:
                events = [self._degrade(e) for e in events]
            out.extend(events)
        return out

    def _degrade(self, event: Event) -> Event:
        """Collapse a memory event to whole-object granularity (the
        field-insensitive ablation)."""
        if event.cell is None or not event.is_memory():
            return event
        from .dsa.graph import Cell
        from .ranges import SymOffset

        node = event.cell.node.find()
        return replace(
            event,
            cell=Cell(node, SymOffset.of(0)),
            size=node.object_size(),
        )

    # -- per-instruction event extraction ----------------------------------------
    def _cell(self, graph, value: Value) -> Optional[Cell]:
        if isinstance(value, Constant):
            return None
        if graph.has_cell(value):
            return graph.cell_of(value)
        return None

    def _const_size(self, value: Value) -> Optional[int]:
        if isinstance(value, Constant) and isinstance(value.value, int):
            return value.value
        return None

    def _keep(self, cell: Optional[Cell], allow_unknown: bool) -> bool:
        if cell is None:
            return False
        node = cell.node.find()
        if node.persistent:
            return True
        # A pure argument node — no caller resolved its provenance — may be
        # persistent; dropping it would blind the checker to library
        # functions analyzed standalone (most LIB bugs reach NVM through
        # pointer arguments). Nodes with a known volatile allocation site
        # are safe to drop.
        if F_ARG in node.flags and F_STACK not in node.flags \
                and F_HEAP not in node.flags:
            return True
        return allow_unknown and F_UNKNOWN in node.flags

    def _events_of(self, fn: Function, graph, inst: ins.Instruction) -> List[Event]:
        name = fn.name

        if isinstance(inst, ins.PAlloc):
            cell = self._cell(graph, inst)
            if cell is not None:
                return [Event(EV_ALLOC, inst.loc, name, cell,
                              cell.node.object_size())]
            return []

        if isinstance(inst, ins.Store):
            cell = self._cell(graph, inst.ptr)
            if self._keep(cell, allow_unknown=False):
                return [Event(EV_WRITE, inst.loc, name, cell,
                              inst.value.type.size())]
            return []

        if isinstance(inst, ins.Load):
            if not self.include_loads:
                return []
            cell = self._cell(graph, inst.ptr)
            if self._keep(cell, allow_unknown=False):
                return [Event(EV_LOAD, inst.loc, name, cell, inst.type.size())]
            return []

        if isinstance(inst, (ins.Memset, ins.Memcpy)):
            dst = inst.dst
            cell = self._cell(graph, dst)
            if self._keep(cell, allow_unknown=False):
                return [Event(EV_WRITE, inst.loc, name, cell,
                              self._const_size(inst.size))]
            return []

        if isinstance(inst, ins.Flush):
            cell = self._cell(graph, inst.ptr)
            if self._keep(cell, allow_unknown=True):
                return [Event(EV_FLUSH, inst.loc, name, cell,
                              self._const_size(inst.size))]
            return []

        if isinstance(inst, ins.Fence):
            return [Event(EV_FENCE, inst.loc, name)]

        if isinstance(inst, ins.TxBegin):
            return [Event(EV_TXBEGIN, inst.loc, name,
                          region_kind=inst.kind, region_label=inst.label)]

        if isinstance(inst, ins.TxEnd):
            return [Event(EV_TXEND, inst.loc, name, region_kind=inst.kind)]

        if isinstance(inst, ins.TxAdd):
            cell = self._cell(graph, inst.ptr)
            if self._keep(cell, allow_unknown=True):
                return [Event(EV_TXADD, inst.loc, name, cell,
                              self._const_size(inst.size))]
            return []

        if isinstance(inst, ins.Spawn):
            return [Event(EV_SPAWN, inst.loc, name, call_inst=inst)]

        if isinstance(inst, ins.Call):
            return self._call_events(fn, graph, inst)

        return []

    def _call_events(self, fn: Function, graph, inst: ins.Call) -> List[Event]:
        annotation = self.module.annotations.lookup(inst.callee)
        if annotation is not None:
            return self._expand_annotation(fn, graph, inst, annotation)
        target = self.module.get_function(inst.callee)
        if target is not None and not target.is_declaration():
            if not self.interprocedural:
                return []  # ablation: the call's effects are invisible
            return [Event(EV_CALL, inst.loc, fn.name, call_inst=inst)]
        return []  # builtin

    def _expand_annotation(self, fn: Function, graph, inst: ins.Call,
                           annotation) -> List[Event]:
        out: List[Event] = []
        for effect in annotation.effects:
            if effect.kind == EFFECT_FENCE:
                out.append(Event(EV_FENCE, inst.loc, fn.name, via=annotation.function))
                continue
            if effect.kind == EFFECT_TX_BEGIN:
                out.append(Event(EV_TXBEGIN, inst.loc, fn.name,
                                 region_kind=effect.region_kind,
                                 via=annotation.function))
                continue
            if effect.kind == EFFECT_TX_END:
                out.append(Event(EV_TXEND, inst.loc, fn.name,
                                 region_kind=effect.region_kind,
                                 via=annotation.function))
                continue
            # pointer-carrying effects
            if effect.ptr_arg >= len(inst.args):
                raise AnalysisError(
                    f"annotation for @{annotation.function}: ptr_arg "
                    f"{effect.ptr_arg} out of range at {inst.loc}"
                )
            cell = self._cell(graph, inst.args[effect.ptr_arg])
            size: Optional[int] = None
            if effect.size_arg >= 0:
                if effect.size_arg >= len(inst.args):
                    raise AnalysisError(
                        f"annotation for @{annotation.function}: size_arg "
                        f"{effect.size_arg} out of range at {inst.loc}"
                    )
                size = self._const_size(inst.args[effect.size_arg])
            elif cell is not None:
                size = cell.node.object_size()
            kind = {
                EFFECT_WRITE: EV_WRITE,
                EFFECT_FLUSH: EV_FLUSH,
                EFFECT_LOG: EV_TXADD,
            }.get(effect.kind)
            if kind is None:
                continue  # alloc handled by DSA
            allow_unknown = kind in (EV_FLUSH, EV_TXADD)
            if self._keep(cell, allow_unknown=allow_unknown):
                out.append(Event(kind, inst.loc, fn.name, cell, size,
                                 via=annotation.function))
        return out

    # -- interprocedural merging -----------------------------------------------
    def _merged(self, fn_name: str, depth: Dict[str, int]) -> List[List[Event]]:
        if fn_name in self._merged_cache and not depth:
            return self._merged_cache[fn_name]
        local = self._local_paths(fn_name)
        graph = self.dsa.graph(fn_name)
        merged: List[List[Event]] = []
        for path in local:
            expanded = self._expand_path(fn_name, graph, path, depth)
            merged.extend(expanded)
            if len(merged) >= self.max_merged:
                merged = merged[: self.max_merged]
                break
        if not depth:
            self._merged_cache[fn_name] = merged
        return merged

    def _expand_path(self, fn_name: str, graph, path: List[Event],
                     depth: Dict[str, int]) -> List[List[Event]]:
        results: List[List[Event]] = [[]]
        for event in path:
            if event.kind != EV_CALL:
                for r in results:
                    r.append(event)
                continue
            callee = event.call_inst.callee  # type: ignore[union-attr]
            d = depth.get(callee, 0)
            if d >= self.recursion_limit:
                continue  # cut recursion, drop the call
            child_depth = dict(depth)
            child_depth[callee] = d + 1
            callee_traces = self._merged(callee, child_depth)
            mapping = graph.call_clone_maps.get(id(event.call_inst), {})
            translated = [
                self._translate(tr, mapping) for tr in callee_traces[:4]
            ] or [[]]
            new_results: List[List[Event]] = []
            for r in results:
                for t in translated:
                    combined = r + t
                    if len(combined) > self.max_events:
                        combined = combined[: self.max_events]
                    new_results.append(combined)
                    if len(new_results) >= self.max_merged:
                        break
                if len(new_results) >= self.max_merged:
                    break
            results = new_results
        return results

    def _translate(self, events: List[Event], mapping) -> List[Event]:
        """Rewrite callee-graph cells into caller-graph cells (Figure 11)."""
        out: List[Event] = []
        for e in events:
            if e.cell is None:
                out.append(e)
                continue
            resolved = e.cell.resolved()
            mapped_node = mapping.get(resolved.node.node_id)
            if mapped_node is None:
                # Node not visible at this call site (callee-internal and
                # unmapped, e.g. recursion cut) — keep the event in callee
                # space; persistence flags still resolve via union-find.
                out.append(e)
                continue
            out.append(replace(e, cell=Cell(mapped_node.find(), resolved.offset)))
        return out
