"""Data Structure Graph (DSG): nodes, cells, and unification.

A simplified but faithful reconstruction of Lattner's DSA as the paper
uses it (§4.2): each node abstracts one set of runtime objects (merged by
unification), is *field-sensitive* (points-to edges live at byte offsets),
and carries flags — most importantly whether the objects were **allocated
from persistent memory**. Nodes that turn out to be purely volatile are
ignored by the checker, which is how DeepMC keeps traces small.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ...errors import AnalysisError
from ...ir import types as ty
from ..ranges import MemRange, SymOffset

# Node flags.
F_HEAP = "heap"          # malloc'd (volatile)
F_PHEAP = "pheap"        # palloc'd (persistent) — the flag that matters
F_STACK = "stack"        # alloca
F_ARG = "arg"            # reaches a formal argument
F_RET = "ret"            # reaches a return value
F_UNKNOWN = "unknown"    # external/opaque origin (e.g. int-to-pointer cast)
F_COLLAPSED = "collapsed"  # field structure no longer trusted

_node_ids = itertools.count(1)


class DSNode:
    """One points-to equivalence class."""

    def __init__(self, flags: Iterable[str] = (), elem_type: Optional[ty.Type] = None):
        self.node_id: int = next(_node_ids)
        self.flags: Set[str] = set(flags)
        self.elem_type = elem_type
        #: constant-offset points-to edges: offset -> Cell
        self.edges: Dict[int, "Cell"] = {}
        #: where this object was allocated: (function, "file:line")
        self.alloc_sites: Set[Tuple[str, str]] = set()
        #: union-find forwarding
        self._forward: Optional["DSNode"] = None

    # -- union-find -------------------------------------------------------
    def find(self) -> "DSNode":
        node = self
        while node._forward is not None:
            node = node._forward
        # path compression
        cur = self
        while cur._forward is not None and cur._forward is not node:
            nxt = cur._forward
            cur._forward = node
            cur = nxt
        return node

    # -- properties ----------------------------------------------------------
    @property
    def persistent(self) -> bool:
        return F_PHEAP in self.find().flags

    def object_size(self) -> Optional[int]:
        """Static size of one object this node abstracts, if known."""
        node = self.find()
        if node.elem_type is not None:
            return node.elem_type.size()
        return None

    def describe(self) -> str:
        node = self.find()
        t = str(node.elem_type) if node.elem_type else "?"
        sites = ", ".join(sorted(f"{f}@{l}" for f, l in node.alloc_sites)) or "-"
        return f"N{node.node_id}<{t}>{sorted(node.flags)} sites={sites}"

    def __repr__(self) -> str:
        return f"<DSNode {self.describe()}>"


@dataclass(frozen=True)
class Cell:
    """A (node, symbolic byte offset) pair — the abstract address of a
    pointer value."""

    node: DSNode
    offset: SymOffset = SymOffset.of(0)

    def resolved(self) -> "Cell":
        n = self.node.find()
        return self if n is self.node else Cell(n, self.offset)

    def moved_const(self, delta: int) -> "Cell":
        return Cell(self.node, self.offset.add_const(delta))

    def moved_term(self, term_id: int, scale: int) -> "Cell":
        return Cell(self.node, self.offset.add_term(term_id, scale))

    def range(self, size: Optional[int]) -> MemRange:
        return MemRange(self.offset, size)

    def __str__(self) -> str:
        return f"(N{self.node.find().node_id}, {self.offset})"


class DSGraph:
    """Per-function data structure graph."""

    def __init__(self, fn_name: str):
        self.fn_name = fn_name
        #: id(ir Value) -> Cell for every pointer-valued IR value
        self.value_cells: Dict[int, Cell] = {}
        #: all nodes ever created in/cloned into this graph
        self.nodes: List[DSNode] = []
        #: formal argument cells by index (pointer args only; None otherwise)
        self.arg_cells: List[Optional[Cell]] = []
        #: return-value cell if the function returns a pointer
        self.ret_cell: Optional[Cell] = None
        #: per-call-site clone maps: id(call inst) -> {callee node_id -> Cell}
        #: (filled by the bottom-up phase; used for trace translation)
        self.call_clone_maps: Dict[int, Dict[int, DSNode]] = {}
        #: call sites in this function whose callee could not be resolved
        self.opaque_calls: Set[int] = set()

    # -- node/cell management ----------------------------------------------
    def new_node(self, flags: Iterable[str] = (),
                 elem_type: Optional[ty.Type] = None) -> DSNode:
        node = DSNode(flags, elem_type)
        self.nodes.append(node)
        return node

    def cell_of(self, value) -> Cell:
        try:
            return self.value_cells[id(value)].resolved()
        except KeyError:
            raise AnalysisError(
                f"no DSG cell for value %{getattr(value, 'name', '?')} "
                f"in @{self.fn_name}"
            ) from None

    def has_cell(self, value) -> bool:
        return id(value) in self.value_cells

    def set_cell(self, value, cell: Cell) -> None:
        self.value_cells[id(value)] = cell

    # -- unification -----------------------------------------------------------
    def unify(self, a: DSNode, b: DSNode) -> DSNode:
        """Merge two nodes (classic DSA unification)."""
        a = a.find()
        b = b.find()
        if a is b:
            return a
        # Keep the node with richer type info as representative.
        if a.elem_type is None and b.elem_type is not None:
            a, b = b, a
        b._forward = a
        a.flags |= b.flags
        a.alloc_sites |= b.alloc_sites
        if a.elem_type is None:
            a.elem_type = b.elem_type
        elif b.elem_type is not None and a.elem_type != b.elem_type:
            # Conflicting layouts: field structure is unreliable.
            a.flags.add(F_COLLAPSED)
        # Merge edges; recursive unification of overlapping edges.
        for off, cell in list(b.edges.items()):
            self.link(a, off, cell)
        b.edges.clear()
        return a

    def link(self, node: DSNode, offset: int, target: Cell) -> None:
        """Ensure ``node.edges[offset]`` points at (unifies with) target."""
        node = node.find()
        target = target.resolved()
        existing = node.edges.get(offset)
        if existing is None:
            node.edges[offset] = target
            return
        existing = existing.resolved()
        merged = self.unify(existing.node, target.node)
        # If the two cells disagree on offset, conservatively collapse to
        # the smaller constant part.
        off = existing.offset
        if not existing.offset.comparable(target.offset):
            off = SymOffset.of(min(existing.offset.const, target.offset.const))
            merged.flags.add(F_COLLAPSED)
        node.edges[offset] = Cell(merged, off)

    def edge_target(self, cell: Cell, create_flags: Iterable[str] = (F_UNKNOWN,)
                    ) -> Cell:
        """The cell a pointer stored at ``cell`` points to (created lazily)."""
        node = cell.node.find()
        key = cell.offset.const  # symbolic part dropped for edge keys
        existing = node.edges.get(key)
        if existing is not None:
            return existing.resolved()
        fresh = self.new_node(create_flags)
        target = Cell(fresh, SymOffset.of(0))
        node.edges[key] = target
        return target

    # -- queries used by the checker -----------------------------------------
    def persistent_nodes(self) -> List[DSNode]:
        seen: Set[int] = set()
        out: List[DSNode] = []
        for node in self.nodes:
            rep = node.find()
            if rep.node_id in seen:
                continue
            seen.add(rep.node_id)
            if rep.persistent:
                out.append(rep)
        return out

    def all_representatives(self) -> List[DSNode]:
        seen: Set[int] = set()
        out: List[DSNode] = []
        for node in self.nodes:
            rep = node.find()
            if rep.node_id not in seen:
                seen.add(rep.node_id)
                out.append(rep)
        return out

    def describe(self) -> str:
        lines = [f"DSG @{self.fn_name}:"]
        for node in self.all_representatives():
            lines.append(f"  {node.describe()}")
            for off, cell in sorted(node.edges.items()):
                lines.append(f"    +{off} -> {cell}")
        return "\n".join(lines)
