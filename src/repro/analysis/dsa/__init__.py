"""Data Structure Analysis pipeline (local → bottom-up → top-down).

Usage::

    result = run_dsa(module)
    g = result.graph("nvm_lock")
    cell = g.cell_of(some_pointer_value)
    cell.node.persistent   # allocated from NVM?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...ir.module import Module
from ...telemetry import NULL_TRACER
from ..callgraph import CallGraph
from .graph import Cell, DSGraph, DSNode, F_COLLAPSED, F_HEAP, F_PHEAP, F_STACK, F_UNKNOWN
from .interproc import bottom_up, top_down
from .local import CallSiteInfo, LocalBuilder, build_local_graphs


@dataclass
class DSAResult:
    """All per-function DSGs after the three phases."""

    module: Module
    callgraph: CallGraph
    graphs: Dict[str, DSGraph]
    calls: Dict[str, List[CallSiteInfo]]

    def graph(self, fn_name: str) -> DSGraph:
        return self.graphs[fn_name]

    def stats(self) -> Dict[str, int]:
        nodes = sum(len(g.all_representatives()) for g in self.graphs.values())
        persistent = sum(len(g.persistent_nodes()) for g in self.graphs.values())
        edges = sum(
            sum(len(node.edges) for node in g.all_representatives())
            for g in self.graphs.values()
        )
        return {
            "functions": len(self.graphs),
            "nodes": nodes,
            "edges": edges,
            "persistent_nodes": persistent,
        }


def run_dsa(module: Module, interprocedural: bool = True,
            tracer=None, metrics=None) -> DSAResult:
    """Run the DSA over a module.

    ``interprocedural=False`` stops after the local phase (no bottom-up
    cloning, no top-down flag propagation) — the ablation that shows why
    §4.2's interprocedural phases matter.

    ``tracer`` (a :class:`repro.telemetry.Tracer`) times the three phases
    as nested spans; ``metrics`` (a
    :class:`repro.telemetry.MetricsRegistry`) receives the graph census
    as ``dsa.*`` gauges.  Both default to no-ops.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("dsa.local"):
        cg = CallGraph(module)
        graphs, calls = build_local_graphs(module)
    if interprocedural:
        with tracer.span("dsa.bottom_up"):
            bottom_up(module, cg, graphs, calls)
        with tracer.span("dsa.top_down"):
            top_down(module, cg, graphs, calls)
    result = DSAResult(module, cg, graphs, calls)
    if metrics is not None:
        metrics.publish("dsa", result.stats())
    return result


__all__ = [
    "Cell",
    "CallSiteInfo",
    "DSAResult",
    "DSGraph",
    "DSNode",
    "F_COLLAPSED",
    "F_HEAP",
    "F_PHEAP",
    "F_STACK",
    "F_UNKNOWN",
    "LocalBuilder",
    "build_local_graphs",
    "run_dsa",
]
