"""DSA phases 2 and 3: bottom-up and top-down analysis.

Bottom-up (§4.2): the call graph is traversed in post-order; at every call
site the callee's graph is *cloned* into the caller (heap cloning — this
is what makes the analysis context-sensitive) and the cloned argument /
return cells are unified with the actual ones. The clone maps are kept:
the trace collector uses them to translate callee-trace events into caller
node space when merging traces at call sites (Figure 11).

Top-down: caller knowledge flows back into callees — most importantly the
``pheap`` (persistent) flag, so a callee that writes through a pointer
argument learns the object lives in NVM, exactly like ``mutex`` in the
paper's Figure 10 walk-through.

Recursive call sites (same SCC) skip cloning and unify directly against
the callee's own nodes: context sensitivity is sacrificed only inside
recursion cycles, mirroring DeepMC's bounded treatment of recursion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ...ir.module import Module
from ..callgraph import CallGraph
from ..ranges import SymOffset
from .graph import Cell, DSGraph, DSNode, F_COLLAPSED, F_HEAP, F_PHEAP, F_STACK
from .local import CallSiteInfo

#: Flags propagated from callers into callees during top-down.
_TOP_DOWN_FLAGS = (F_PHEAP, F_HEAP, F_STACK)


def _clone_graph_into(
    src: DSGraph, dst: DSGraph
) -> Dict[int, DSNode]:
    """Copy every representative node of ``src`` into ``dst``.

    Returns the clone map: source representative node_id -> cloned node.
    """
    mapping: Dict[int, DSNode] = {}
    reps = src.all_representatives()
    for rep in reps:
        clone = dst.new_node(rep.flags, rep.elem_type)
        clone.alloc_sites = set(rep.alloc_sites)
        mapping[rep.node_id] = clone
    for rep in reps:
        clone = mapping[rep.node_id]
        for off, cell in rep.edges.items():
            tgt = cell.resolved()
            clone.edges[off] = Cell(mapping[tgt.node.node_id], tgt.offset)
    return mapping


def _map_cell(mapping: Dict[int, DSNode], cell: Optional[Cell]) -> Optional[Cell]:
    if cell is None:
        return None
    resolved = cell.resolved()
    mapped = mapping.get(resolved.node.node_id)
    if mapped is None:
        return None
    return Cell(mapped, resolved.offset)


def bottom_up(
    module: Module,
    cg: CallGraph,
    graphs: Dict[str, DSGraph],
    calls: Dict[str, List[CallSiteInfo]],
) -> None:
    """Inline callee graphs at call sites, callees first."""
    scc_of: Dict[str, int] = {}
    for i, comp in enumerate(cg.sccs()):
        for name in comp:
            scc_of[name] = i

    for fn_name in cg.post_order():
        caller_graph = graphs[fn_name]
        for site in calls.get(fn_name, []):
            callee_graph = graphs.get(site.callee)
            if callee_graph is None:
                continue
            recursive = scc_of.get(site.callee) == scc_of.get(fn_name)
            if recursive:
                # Share nodes directly: unify actuals with callee formals.
                mapping = {
                    n.node_id: n for n in callee_graph.all_representatives()
                }
                _bind(caller_graph, callee_graph, mapping, site, shared=True)
            else:
                mapping = _clone_graph_into(callee_graph, caller_graph)
                _bind(caller_graph, callee_graph, mapping, site, shared=False)
            caller_graph.call_clone_maps[id(site.inst)] = mapping


def _bind(
    caller_graph: DSGraph,
    callee_graph: DSGraph,
    mapping: Dict[int, DSNode],
    site: CallSiteInfo,
    shared: bool,
) -> None:
    """Unify cloned formal cells with actual cells at one call site."""
    for actual, formal in zip(site.arg_cells, callee_graph.arg_cells):
        if actual is None or formal is None:
            continue
        cloned = _map_cell(mapping, formal)
        if cloned is None:
            continue
        caller_graph.unify(actual.node, cloned.node)
    if site.result_value is not None and callee_graph.ret_cell is not None:
        cloned_ret = _map_cell(mapping, callee_graph.ret_cell)
        if cloned_ret is not None:
            result_cell = caller_graph.cell_of(site.result_value)
            caller_graph.unify(result_cell.node, cloned_ret.node)
            # Re-point the result at the callee's return cell so offsets
            # carried by the return value survive.
            caller_graph.set_cell(
                site.result_value, Cell(cloned_ret.node.find(), cloned_ret.offset)
            )


def top_down(
    module: Module,
    cg: CallGraph,
    graphs: Dict[str, DSGraph],
    calls: Dict[str, List[CallSiteInfo]],
) -> None:
    """Propagate caller facts (persistence!) into callee graphs.

    Flags only ever grow, so iterating to a fixpoint terminates; the bound
    is a safety net for pathological graphs.
    """
    order = list(reversed(cg.post_order()))  # callers before callees
    for _round in range(16):
        changed = False
        for fn_name in order:
            caller_graph = graphs.get(fn_name)
            if caller_graph is None:
                continue
            for site in calls.get(fn_name, []):
                callee_graph = graphs.get(site.callee)
                if callee_graph is None:
                    continue
                mapping = caller_graph.call_clone_maps.get(id(site.inst))
                if not mapping:
                    continue
                index = {
                    n.node_id: n for n in callee_graph.nodes
                }
                for callee_id, caller_node in mapping.items():
                    callee_node = index.get(callee_id)
                    if callee_node is None:
                        continue
                    callee_rep = callee_node.find()
                    caller_rep = caller_node.find()
                    for flag in _TOP_DOWN_FLAGS:
                        if flag in caller_rep.flags and flag not in callee_rep.flags:
                            callee_rep.flags.add(flag)
                            changed = True
                    if callee_rep.elem_type is None and caller_rep.elem_type is not None:
                        callee_rep.elem_type = caller_rep.elem_type
                        changed = True
        if not changed:
            return
