"""DSA phase 1: local analysis.

Builds one DSG per function from its IR alone (§4.2 "Local Analysis"):
nodes are created at malloc-like sites (``palloc`` marks them persistent),
field addressing moves cells by constant offsets, array indexing by
symbolic terms, and pointer stores/loads create points-to edges. Calls are
recorded for the bottom-up phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...ir import instructions as ins
from ...ir import types as ty
from ...ir.annotations import EFFECT_ALLOC
from ...ir.function import Function
from ...ir.module import Module
from ...ir.values import Constant, Value
from ..ranges import SymOffset
from .graph import (
    Cell,
    DSGraph,
    F_ARG,
    F_HEAP,
    F_PHEAP,
    F_RET,
    F_STACK,
    F_UNKNOWN,
)


@dataclass
class CallSiteInfo:
    """One call/spawn to a module-defined function, pending bottom-up."""

    inst: ins.Instruction  # Call or Spawn
    callee: str
    arg_cells: List[Optional[Cell]]
    #: the call instruction itself when it produces a pointer result
    result_value: Optional[Value]


class LocalBuilder:
    """Builds the local DSG of one function."""

    def __init__(self, module: Module, fn: Function):
        self.module = module
        self.fn = fn
        self.graph = DSGraph(fn.name)
        self.calls: List[CallSiteInfo] = []

    def build(self) -> DSGraph:
        g = self.graph
        for arg in self.fn.args:
            if isinstance(arg.type, ty.PointerType):
                node = g.new_node([F_ARG], arg.type.pointee)
                cell = Cell(node)
                g.set_cell(arg, cell)
                g.arg_cells.append(cell)
            else:
                g.arg_cells.append(None)
        if self.fn.is_declaration():
            return g
        for block in self.fn.blocks:
            for inst in block.instructions:
                self._visit(inst)
        return g

    # -- helpers -----------------------------------------------------------
    def _loc_key(self, inst: ins.Instruction) -> str:
        return f"{inst.loc.file}:{inst.loc.line}"

    def _operand_cell(self, value: Value) -> Cell:
        """Cell of a pointer operand; constants/opaque get fresh nodes."""
        if self.graph.has_cell(value):
            return self.graph.cell_of(value)
        node = self.graph.new_node([F_UNKNOWN])
        cell = Cell(node)
        if not isinstance(value, Constant):
            self.graph.set_cell(value, cell)
        return cell

    def _is_ptr(self, value: Optional[Value]) -> bool:
        return value is not None and isinstance(value.type, ty.PointerType)

    # -- the per-instruction transfer function -----------------------------------
    def _visit(self, inst: ins.Instruction) -> None:
        g = self.graph

        if isinstance(inst, ins.Alloca):
            node = g.new_node([F_STACK], inst.alloc_type)
            node.alloc_sites.add((self.fn.name, self._loc_key(inst)))
            g.set_cell(inst, Cell(node))
            return

        if isinstance(inst, ins.Malloc):
            node = g.new_node([F_HEAP], inst.alloc_type)
            node.alloc_sites.add((self.fn.name, self._loc_key(inst)))
            g.set_cell(inst, Cell(node))
            return

        if isinstance(inst, ins.PAlloc):
            node = g.new_node([F_HEAP, F_PHEAP], inst.alloc_type)
            node.alloc_sites.add((self.fn.name, self._loc_key(inst)))
            g.set_cell(inst, Cell(node))
            return

        if isinstance(inst, ins.GetField):
            base = self._operand_cell(inst.ptr)
            offset = inst.struct.field_offset(inst.index)
            g.set_cell(inst, base.moved_const(offset))
            return

        if isinstance(inst, ins.GetElem):
            base = self._operand_cell(inst.ptr)
            elem = inst.type.pointee
            assert elem is not None
            index = inst.index
            if isinstance(index, Constant) and isinstance(index.value, int):
                g.set_cell(inst, base.moved_const(index.value * elem.size()))
            else:
                g.set_cell(inst, base.moved_term(id(index), elem.size()))
            return

        if isinstance(inst, ins.Load):
            if self._is_ptr(inst):
                ptr_cell = self._operand_cell(inst.ptr)
                g.set_cell(inst, g.edge_target(ptr_cell))
            return

        if isinstance(inst, ins.Store):
            if self._is_ptr(inst.value):
                ptr_cell = self._operand_cell(inst.ptr)
                val_cell = self._operand_cell(inst.value)
                g.link(ptr_cell.node, ptr_cell.offset.const, val_cell)
            return

        if isinstance(inst, ins.Cast):
            if self._is_ptr(inst):
                if self._is_ptr(inst.value):
                    # pointer-to-pointer cast: tracking preserved
                    g.set_cell(inst, self._operand_cell(inst.value))
                else:
                    # int-to-pointer: provenance laundered — the analysis
                    # blind spot behind some of the paper's false positives
                    node = g.new_node([F_UNKNOWN])
                    g.set_cell(inst, Cell(node))
            return

        if isinstance(inst, (ins.Call, ins.Spawn)):
            self._visit_call(inst)
            return

        if isinstance(inst, ins.Ret):
            if inst.value is not None and self._is_ptr(inst.value):
                val_cell = self._operand_cell(inst.value)
                if g.ret_cell is None:
                    node = g.new_node([F_RET])
                    g.ret_cell = Cell(node)
                g.unify(g.ret_cell.node, val_cell.node)
                g.ret_cell = g.ret_cell.resolved()
            return

        # flush/fence/txadd/memcpy/... create no pointer values; their
        # pointer operands are resolved on demand by the trace collector.

    def _visit_call(self, inst) -> None:
        g = self.graph
        callee = inst.callee
        target = self.module.get_function(callee)
        annotation = self.module.annotations.lookup(callee)

        arg_cells: List[Optional[Cell]] = []
        for a in inst.args if isinstance(inst, ins.Call) else inst.operands:
            arg_cells.append(self._operand_cell(a) if self._is_ptr(a) else None)

        produces_ptr = isinstance(inst.type, ty.PointerType)

        if target is not None and not target.is_declaration():
            if produces_ptr:
                node = g.new_node([F_UNKNOWN])
                g.set_cell(inst, Cell(node))
            self.calls.append(
                CallSiteInfo(inst, callee, arg_cells,
                             inst if produces_ptr else None)
            )
            return

        if annotation is not None and annotation.has_effect(EFFECT_ALLOC):
            pointee = inst.type.pointee if produces_ptr else None
            node = g.new_node([F_HEAP, F_PHEAP], pointee)
            node.alloc_sites.add((self.fn.name, self._loc_key(inst)))
            if produces_ptr:
                g.set_cell(inst, Cell(node))
            return

        if produces_ptr:
            # Builtin / annotated non-alloc function returning a pointer.
            node = g.new_node([F_UNKNOWN])
            g.set_cell(inst, Cell(node))
        if target is None and annotation is None:
            g.opaque_calls.add(id(inst))


def build_local_graphs(module: Module):
    """Run local analysis for every defined function.

    Returns ``(graphs, calls)``: per-function DSGs and pending call sites.
    """
    graphs: Dict[str, DSGraph] = {}
    calls: Dict[str, List[CallSiteInfo]] = {}
    for fn in module.functions():
        builder = LocalBuilder(module, fn)
        graphs[fn.name] = builder.build()
        calls[fn.name] = builder.calls
    return graphs, calls
