"""Cooperative deadline budgets.

A :class:`Deadline` is an absolute point on the monotonic clock that
long-running stages poll at natural checkpoints (crash-point boundaries,
image classification, checker phases). Cooperative cancellation keeps two
properties a hard kill cannot give:

* **partial results stay well-formed** — a stage that notices expiry
  finishes the item it is on and returns everything enumerated so far,
  explicitly marked truncated, instead of tearing down mid-mutation;
* **no orphaned work** — the budget travels *into* the stage as a plain
  value, so a worker process honours the same deadline its request
  carried, with no cross-process signalling.

``Deadline.never()`` is the no-op budget: ``expired()`` is always False
and ``remaining()`` is ``inf``, so call sites need no None-checks on hot
paths. Budgets are relative seconds at construction; the absolute
monotonic deadline is computed once, so repeated polling is one clock
read and one comparison.
"""

from __future__ import annotations

import math
from time import monotonic
from typing import Optional


class Deadline:
    """An absolute monotonic-clock budget that stages poll cooperatively."""

    __slots__ = ("_at",)

    def __init__(self, seconds: Optional[float] = None):
        """A deadline ``seconds`` from now; ``None`` never expires."""
        if seconds is None:
            self._at: Optional[float] = None
        else:
            self._at = monotonic() + max(float(seconds), 0.0)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    @classmethod
    def at(cls, monotonic_deadline: Optional[float]) -> "Deadline":
        """Wrap an absolute ``time.monotonic()`` value (or None)."""
        dl = cls(None)
        dl._at = monotonic_deadline
        return dl

    @property
    def unbounded(self) -> bool:
        return self._at is None

    def remaining(self) -> float:
        """Seconds left (may be negative once expired); ``inf`` when
        unbounded."""
        if self._at is None:
            return math.inf
        return self._at - monotonic()

    def expired(self) -> bool:
        return self._at is not None and monotonic() >= self._at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._at is None:
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.3f}s)"
