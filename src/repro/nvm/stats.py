"""Execution statistics for the NVM substrate.

The performance-bug experiments read these counters: redundant flushes show
up as ``flushes_clean`` (write-backs of lines that were not dirty) and as
inflated ``nvm_write_bytes``; empty durable transactions show up as fences
with zero drained lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class NVMStats:
    """Counters accumulated by :class:`repro.nvm.domain.PersistDomain`."""

    stores: int = 0
    persistent_stores: int = 0
    loads: int = 0
    persistent_loads: int = 0
    flushes: int = 0
    #: Flushes whose target lines were all clean (pure overhead).
    flushes_clean: int = 0
    #: Flush of a line already pending (issued but not yet fenced).
    flushes_duplicate: int = 0
    fences: int = 0
    #: Fences that drained no pending lines (pure overhead).
    fences_empty: int = 0
    #: Lines written back to NVM media (fence drains + evictions).
    lines_written_back: int = 0
    #: Of those, write-backs triggered by cache eviction.
    lines_evicted: int = 0
    nvm_write_bytes: int = 0
    cycles: int = 0
    tx_begins: Dict[str, int] = field(default_factory=dict)
    tx_ends: Dict[str, int] = field(default_factory=dict)

    def record_tx_begin(self, kind: str) -> None:
        self.tx_begins[kind] = self.tx_begins.get(kind, 0) + 1

    def record_tx_end(self, kind: str) -> None:
        self.tx_ends[kind] = self.tx_ends.get(kind, 0) + 1

    def snapshot(self) -> Dict[str, int]:
        """Flat dict view, for reports and benches."""
        out = {
            "stores": self.stores,
            "persistent_stores": self.persistent_stores,
            "loads": self.loads,
            "persistent_loads": self.persistent_loads,
            "flushes": self.flushes,
            "flushes_clean": self.flushes_clean,
            "flushes_duplicate": self.flushes_duplicate,
            "fences": self.fences,
            "fences_empty": self.fences_empty,
            "lines_written_back": self.lines_written_back,
            "lines_evicted": self.lines_evicted,
            "nvm_write_bytes": self.nvm_write_bytes,
            "cycles": self.cycles,
        }
        for kind, n in self.tx_begins.items():
            out[f"tx_begin[{kind}]"] = n
        return out
