"""Simulated NVM substrate: cache, persist domain, durable device, costs."""

from .cache import WriteBackCache
from .cacheline import CACHELINE, line_index, line_span, lines_covering
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .device import NVMDevice
from .domain import PersistDomain
from .stats import NVMStats

__all__ = [
    "CACHELINE",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "NVMDevice",
    "NVMStats",
    "PersistDomain",
    "WriteBackCache",
    "line_index",
    "line_span",
    "lines_covering",
]
