"""Persist domain: ties the cache model to the durable device.

This is the component that gives the simulator x86-like persistence
semantics:

* a store to persistent memory dirties its cachelines (and may cause an
  eviction, which writes the line back *without* any flush — the source of
  "sometimes survives anyway" behaviour of unflushed writes);
* ``flush`` (clwb-like) *initiates* write-back: the line moves to a pending
  set but durability is not guaranteed yet;
* ``fence`` (sfence-like) drains the pending set: only then are the flushed
  lines durably on the device.

Crash semantics: at any instant the durable state is the device image; the
crash tester may additionally consider any subset of *pending* (flushed but
unfenced) lines as having completed, because clwb gives no ordering until
the fence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional

from .cache import WriteBackCache
from .cacheline import CACHELINE, LineId, intern_line, line_span, lines_covering
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .device import NVMDevice
from .stats import NVMStats

#: Reads architectural memory: (alloc_id, start, end) -> bytes.
MemoryReader = Callable[[int, int, int], bytes]


class PersistDomain:
    """The persistence state machine between CPU stores and NVM media."""

    def __init__(
        self,
        memory_reader: MemoryReader,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        cache_capacity_lines: int = 8192,
        event_emitter: Optional[Callable[..., None]] = None,
        fault_injector: Optional[object] = None,
    ):
        self._read_mem = memory_reader
        self.cost = cost_model
        #: telemetry hook ``emit(kind, **fields)`` for the persist-event
        #: stream (store/flush/fence/write-back); None keeps the hot path
        #: at one attribute load + branch per event.
        self._emit = event_emitter
        #: optional :class:`repro.faults.FaultInjector` (duck-typed:
        #: ``nvm_drain_fault(line)`` / ``nvm_spurious_evict(line)``).
        #: None keeps the fault-free hot path at one branch per fence
        #: drain and per store.
        self._faults = fault_injector
        self.stats = NVMStats()
        self.device = NVMDevice()
        self.cache = WriteBackCache(cache_capacity_lines)
        self.cache.set_writeback(self._write_back)
        #: flushed-but-unfenced lines, in issue order.
        self._pending: "OrderedDict[LineId, None]" = OrderedDict()
        self._alloc_sizes: Dict[int, int] = {}

    # -- allocation lifecycle ---------------------------------------------
    def on_palloc(self, alloc_id: int, size: int) -> None:
        self.device.register(alloc_id, size)
        self._alloc_sizes[alloc_id] = size
        if self._emit is not None:
            self._emit("persist.palloc", alloc=alloc_id, size=size)

    def on_pfree(self, alloc_id: int) -> None:
        self.cache.drop_allocation(alloc_id)
        for line in [l for l in self._pending if l[0] == alloc_id]:
            del self._pending[line]
        self.device.release(alloc_id)
        self._alloc_sizes.pop(alloc_id, None)
        if self._emit is not None:
            self._emit("persist.pfree", alloc=alloc_id)

    def is_persistent(self, alloc_id: int) -> bool:
        return alloc_id in self._alloc_sizes

    # -- CPU-side events -------------------------------------------------------
    def on_store(self, alloc_id: int, offset: int, size: int) -> None:
        """A store hit persistent memory: dirty the covered lines."""
        self.stats.persistent_stores += 1
        # Fast path: almost every store fits one cacheline. Same
        # semantics as the loop below — one touch_dirty keeps the LRU
        # move-to-end order identical — minus the generator machinery.
        if 0 < size <= CACHELINE - offset % CACHELINE:
            line = intern_line(alloc_id, offset // CACHELINE)
            self.cache.touch_dirty(line)
            lines = (line,)
        else:
            lines = []
            for idx in lines_covering(offset, size):
                line = intern_line(alloc_id, idx)
                # A new store invalidates a pending-but-undrained flush
                # of the same line (its content snapshot would be stale
                # on real HW too: clwb persists whatever is in the line
                # when it drains).
                self.cache.touch_dirty(line)
                lines.append(line)
        if self._emit is not None:
            self._emit("persist.store", alloc=alloc_id, offset=offset,
                       size=size)
        if self._faults is not None:
            # Spurious eviction: the cache writes a just-dirtied line back
            # on its own, before any flush/fence orders it — the
            # "unpredictable cache evictions" failure mode, on demand.
            # Checked after the store event is emitted so the recorded
            # stream keeps content capture ahead of the write-back.
            for line in lines:
                if self.cache.is_dirty(line) and \
                        self._faults.nvm_spurious_evict(line):
                    self._write_back(line, evicted=True)

    def on_load(self, alloc_id: int, offset: int, size: int) -> None:
        self.stats.persistent_loads += 1

    def flush(self, alloc_id: int, offset: int, size: int) -> None:
        """Initiate write-back of all lines covering the byte range.

        Cost is charged per covered cacheline: a range flush is a loop of
        one ``clwb`` per line, so flushing a 4-line object for a 1-line
        update costs 4x the issue latency even when 3 lines are clean.
        """
        self.stats.flushes += 1
        any_dirty = False
        # Single-line fast path, mirroring on_store's: identical stats
        # accounting and pending-queue (move-to-end) transitions.
        if 0 < size <= CACHELINE - offset % CACHELINE:
            self.stats.cycles += self.cost.flush_issue
            line = intern_line(alloc_id, offset // CACHELINE)
            if self.cache.is_dirty(line):
                any_dirty = True
                if line in self._pending:
                    self.stats.flushes_duplicate += 1
                    self._pending.move_to_end(line)
                else:
                    self._pending[line] = None
            elif line in self._pending:
                self.stats.flushes_duplicate += 1
        else:
            for idx in lines_covering(offset, size):
                self.stats.cycles += self.cost.flush_issue
                line = intern_line(alloc_id, idx)
                if self.cache.is_dirty(line):
                    any_dirty = True
                    if line in self._pending:
                        self.stats.flushes_duplicate += 1
                        self._pending.move_to_end(line)
                    else:
                        self._pending[line] = None
                else:
                    # Flushing a clean line costs latency and NVM traffic
                    # on real hardware (clflush unconditionally writes
                    # back); count it as pure overhead.
                    if line in self._pending:
                        self.stats.flushes_duplicate += 1
        if not any_dirty:
            self.stats.flushes_clean += 1
        if self._emit is not None:
            self._emit("persist.flush", alloc=alloc_id, offset=offset,
                       size=size, clean=not any_dirty,
                       pending=len(self._pending))

    def fence(self) -> int:
        """Drain pending flushes; returns the number of lines persisted.

        With a fault injector attached, each drain may be *dropped* (the
        clwb is silently lost: the line stays dirty and never reaches the
        device — a later flush+fence can still persist it) or *torn*
        (only the first ``keep`` bytes of the line reach the device, as
        when power fails mid write-back). Both emit their own persist
        event before the fence event so a recorded trace replays to the
        same durable image the live device holds.
        """
        self.stats.fences += 1
        self.stats.cycles += self.cost.fence
        drained = 0
        while self._pending:
            line, _ = self._pending.popitem(last=False)
            fault = (self._faults.nvm_drain_fault(line)
                     if self._faults is not None else None)
            if fault is None:
                self._write_back(line, evicted=False)
                drained += 1
            elif fault[0] == "drop":
                if self._emit is not None:
                    self._emit("persist.drop", alloc=line[0], line=line[1])
            elif fault[0] == "torn":
                self._torn_write_back(line, int(fault[1]))
                drained += 1
            else:
                raise ValueError(f"unknown NVM drain fault {fault!r}")
        if drained == 0:
            self.stats.fences_empty += 1
        if self._emit is not None:
            self._emit("persist.fence", drained=drained, empty=drained == 0)
        return drained

    # -- write-back sink -----------------------------------------------------
    def _write_back(self, line: LineId, evicted: bool) -> None:
        alloc_id, idx = line
        size = self._alloc_sizes.get(alloc_id)
        if size is None:
            return  # allocation freed while line pending
        start, end = line_span(idx)
        end = min(end, size)
        content = self._read_mem(alloc_id, start, end)
        written = self.device.write_back_line(line, content)
        self.cache.clean(line)
        self._pending.pop(line, None)
        self.stats.lines_written_back += 1
        self.stats.nvm_write_bytes += written
        self.stats.cycles += self.cost.nvm_line_writeback
        if evicted:
            self.stats.lines_evicted += 1
            if self._emit is not None:
                self._emit("persist.evict", alloc=alloc_id, line=idx,
                           bytes=written)

    def _torn_write_back(self, line: LineId, keep: int) -> None:
        """Persist only the first ``keep`` bytes of a draining line.

        Models a write-back racing power failure: the line is clean as
        far as the cache is concerned, but the device holds a partial
        update. The lost tail keeps its old durable content.
        """
        alloc_id, idx = line
        size = self._alloc_sizes.get(alloc_id)
        if size is None:
            return  # allocation freed while line pending
        start, end = line_span(idx)
        end = min(end, size)
        content = self._read_mem(alloc_id, start, end)
        keep = max(0, min(keep, len(content)))
        written = self.device.write_back_line(line, content[:keep])
        self.cache.clean(line)
        self._pending.pop(line, None)
        self.stats.lines_written_back += 1
        self.stats.nvm_write_bytes += written
        self.stats.cycles += self.cost.nvm_line_writeback
        if self._emit is not None:
            self._emit("persist.torn", alloc=alloc_id, line=idx, keep=keep)

    # -- crash-state inspection --------------------------------------------------
    def pending_lines(self) -> List[LineId]:
        return list(self._pending)

    def line_bytes(self, line: LineId) -> bytes:
        """Current *architectural* content of one cacheline — what a
        completing flush of that line would persist right now."""
        alloc_id, idx = line
        size = self._alloc_sizes[alloc_id]
        start, end = line_span(idx)
        end = min(end, size)
        return self._read_mem(alloc_id, start, end)

    def durable_line_bytes(self, line: LineId) -> bytes:
        """Content of one cacheline on the durable device image."""
        alloc_id, idx = line
        size = self._alloc_sizes[alloc_id]
        start, end = line_span(idx)
        end = min(end, size)
        return self.device.read(alloc_id, start, end - start)

    def dirty_unflushed_lines(self) -> List[LineId]:
        return [l for l in self.cache.dirty_lines() if l not in self._pending]

    def durable_snapshot(self) -> Dict[int, bytes]:
        return self.device.durable_snapshot()

    def crash_state(self, completed_pending: Optional[Iterable[LineId]] = None
                    ) -> Dict[int, bytes]:
        """Durable image at a crash, with a chosen subset of pending
        flushes considered completed (clwb completion is unordered until
        the fence, so any subset is a legal crash state)."""
        image = {aid: bytearray(img) for aid, img in
                 self.device.durable_snapshot().items()}
        for line in completed_pending or ():
            if line not in self._pending:
                raise ValueError(f"line {line} is not pending")
            alloc_id, idx = line
            size = self._alloc_sizes[alloc_id]
            start, end = line_span(idx)
            end = min(end, size)
            image[alloc_id][start:end] = self._read_mem(alloc_id, start, end)
        return {aid: bytes(img) for aid, img in image.items()}
