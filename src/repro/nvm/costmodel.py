"""Latency cost model for the simulated NVM system.

Cycle counts are loosely calibrated to published Optane measurements
(Izraelevitz et al., arXiv:1903.05714, cited by the paper): NVM writes are
several times more expensive than DRAM, an extra write-back adds 2–4x
latency, and fences serialize. The absolute values matter less than the
ratios — the paper's performance-bug experiments are about *relative*
slowdowns from redundant flushes/fences.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the interpreter/persist domain."""

    #: Base cost of any executed instruction.
    instruction: int = 1
    #: Volatile load / store (cache hit assumed).
    load: int = 4
    store: int = 4
    #: Issuing a clwb-like flush (independent of completion).
    flush_issue: int = 30
    #: Writing one cacheline back to NVM media (charged at fence/eviction).
    nvm_line_writeback: int = 150
    #: Persist barrier drain (plus per pending line writeback).
    fence: int = 100
    #: Per-byte cost for memcpy/memset.
    byte_move: int = 1
    #: Transaction bookkeeping (begin/end/log).
    tx_overhead: int = 20

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly scaled model (used by ablation benches)."""
        return CostModel(
            instruction=max(1, int(self.instruction * factor)),
            load=max(1, int(self.load * factor)),
            store=max(1, int(self.store * factor)),
            flush_issue=max(1, int(self.flush_issue * factor)),
            nvm_line_writeback=max(1, int(self.nvm_line_writeback * factor)),
            fence=max(1, int(self.fence * factor)),
            byte_move=max(1, int(self.byte_move * factor)),
            tx_overhead=max(1, int(self.tx_overhead * factor)),
        )


#: Default model used everywhere unless a bench overrides it.
DEFAULT_COST_MODEL = CostModel()
