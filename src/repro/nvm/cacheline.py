"""Cacheline geometry helpers.

Everything persistence-related happens at cacheline granularity: stores
dirty lines, ``clwb`` writes lines back, crash states are line-atomic.
"""

from __future__ import annotations

from typing import Iterator, Tuple

#: Cacheline size in bytes (x86).
CACHELINE = 64

#: A line is identified by (allocation id, line index within allocation).
LineId = Tuple[int, int]


def line_index(offset: int) -> int:
    """Line index containing byte ``offset``."""
    return offset // CACHELINE


def lines_covering(offset: int, size: int) -> Iterator[int]:
    """Indices of all lines touched by ``[offset, offset+size)``."""
    if size <= 0:
        return
    first = offset // CACHELINE
    last = (offset + size - 1) // CACHELINE
    for i in range(first, last + 1):
        yield i


def line_span(index: int) -> Tuple[int, int]:
    """Byte range ``[start, end)`` of line ``index``."""
    return index * CACHELINE, (index + 1) * CACHELINE
