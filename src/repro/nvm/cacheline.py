"""Cacheline geometry helpers.

Everything persistence-related happens at cacheline granularity: stores
dirty lines, ``clwb`` writes lines back, crash states are line-atomic.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

#: Cacheline size in bytes (x86).
CACHELINE = 64

#: A line is identified by (allocation id, line index within allocation).
LineId = Tuple[int, int]

#: intern table for line ids, keyed alloc -> index -> tuple. The persist
#: domain hits the same few lines millions of times per run; handing back
#: one shared tuple per line keeps the hot store/flush path free of
#: per-event tuple allocation. Bounds are generous (a run touching more
#: distinct lines than this is dominated by other costs) and clearing is
#: safe at any time: interning is an allocation cache, never identity —
#: equal tuples behave identically as dict keys.
_INTERNED: Dict[int, Dict[int, LineId]] = {}
_MAX_ALLOCS = 1024
_MAX_LINES_PER_ALLOC = 4096


def intern_line(alloc_id: int, index: int) -> LineId:
    """The canonical ``(alloc_id, index)`` tuple for one cacheline."""
    per = _INTERNED.get(alloc_id)
    if per is None:
        if len(_INTERNED) >= _MAX_ALLOCS:
            _INTERNED.clear()
        per = _INTERNED[alloc_id] = {}
    line = per.get(index)
    if line is None:
        if len(per) >= _MAX_LINES_PER_ALLOC:
            per.clear()
        line = per[index] = (alloc_id, index)
    return line


def line_index(offset: int) -> int:
    """Line index containing byte ``offset``."""
    return offset // CACHELINE


def lines_covering(offset: int, size: int) -> Iterator[int]:
    """Indices of all lines touched by ``[offset, offset+size)``."""
    if size <= 0:
        return
    first = offset // CACHELINE
    last = (offset + size - 1) // CACHELINE
    for i in range(first, last + 1):
        yield i


def line_span(index: int) -> Tuple[int, int]:
    """Byte range ``[start, end)`` of line ``index``."""
    return index * CACHELINE, (index + 1) * CACHELINE
