"""The NVM device: the durable image of persistent allocations.

The device stores, per persistent allocation, the bytes that would survive
a power failure. Lines reach the device via fence drains and cache
evictions; a crash exposes exactly the device contents (plus whichever
pending flushes the crash tester chooses to consider completed).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import MemoryFault
from .cacheline import CACHELINE, LineId, line_span


class NVMDevice:
    """Byte-accurate durable image, keyed by allocation id."""

    def __init__(self) -> None:
        self._image: Dict[int, bytearray] = {}
        self._sizes: Dict[int, int] = {}

    def register(self, alloc_id: int, size: int) -> None:
        """Create the durable backing for a fresh persistent allocation.

        Freshly allocated NVM is zero-filled, matching what a pmem
        allocator guarantees before handing memory out.
        """
        if alloc_id in self._image:
            raise MemoryFault(f"allocation {alloc_id} already registered on device")
        self._image[alloc_id] = bytearray(size)
        self._sizes[alloc_id] = size

    def is_registered(self, alloc_id: int) -> bool:
        return alloc_id in self._image

    def release(self, alloc_id: int) -> None:
        self._image.pop(alloc_id, None)
        self._sizes.pop(alloc_id, None)

    def write_back_line(self, line: LineId, content: bytes) -> int:
        """Persist one cacheline; returns bytes actually written."""
        alloc_id, index = line
        try:
            image = self._image[alloc_id]
        except KeyError:
            raise MemoryFault(
                f"write-back to unregistered allocation {alloc_id}"
            ) from None
        start, end = line_span(index)
        end = min(end, len(image))
        if start >= len(image):
            raise MemoryFault(
                f"write-back beyond allocation {alloc_id}: line {index}"
            )
        chunk = content[: end - start]
        image[start : start + len(chunk)] = chunk
        return len(chunk)

    def read(self, alloc_id: int, offset: int, size: int) -> bytes:
        """Read from the durable image (used by crash-state inspection)."""
        try:
            image = self._image[alloc_id]
        except KeyError:
            raise MemoryFault(f"read of unregistered allocation {alloc_id}") from None
        if offset < 0 or offset + size > len(image):
            raise MemoryFault(
                f"durable read out of range: alloc {alloc_id} "
                f"[{offset}, {offset + size}) of {len(image)}"
            )
        return bytes(image[offset : offset + size])

    def durable_snapshot(self) -> Dict[int, bytes]:
        """Copy of the whole durable image (for crash-state diffing)."""
        return {aid: bytes(img) for aid, img in self._image.items()}

    def size_of(self, alloc_id: int) -> Optional[int]:
        return self._sizes.get(alloc_id)
