"""Write-back cache model for persistent lines.

Tracks the dirty persistent cachelines sitting between the CPU and NVM.
A bounded capacity with LRU eviction models the "unpredictable cache
evictions" the paper opens with: dirty lines can reach NVM *without* a
flush, which is exactly why unflushed writes are sometimes-but-not-always
durable and so hard to test for.

The cache only tracks *persistent* lines — volatile data can never create
a persistency bug and tracking it would only slow simulation down (the
same scalability argument DeepMC makes in §5.2).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional

from .cacheline import LineId


class WriteBackCache:
    """LRU set of dirty persistent cachelines.

    ``capacity_lines`` bounds how many dirty lines may be outstanding;
    overflow evicts the least-recently-touched line through the
    ``writeback`` callback (installed by the persist domain).
    """

    def __init__(self, capacity_lines: int = 8192):
        if capacity_lines <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity_lines = capacity_lines
        self._dirty: "OrderedDict[LineId, None]" = OrderedDict()
        self._writeback: Optional[Callable[[LineId, bool], None]] = None

    def set_writeback(self, cb: Callable[[LineId, bool], None]) -> None:
        """Install the eviction/write-back sink. ``cb(line, evicted)``."""
        self._writeback = cb

    def is_dirty(self, line: LineId) -> bool:
        return line in self._dirty

    def dirty_lines(self) -> List[LineId]:
        return list(self._dirty)

    def dirty_count(self) -> int:
        return len(self._dirty)

    def touch_dirty(self, line: LineId) -> None:
        """Mark a line dirty (a store hit it); may trigger an eviction."""
        if line in self._dirty:
            self._dirty.move_to_end(line)
            return
        self._dirty[line] = None
        if len(self._dirty) > self.capacity_lines:
            victim, _ = self._dirty.popitem(last=False)
            if self._writeback is not None:
                self._writeback(victim, True)

    def clean(self, line: LineId) -> bool:
        """Remove a line from the dirty set; True if it was dirty."""
        if line in self._dirty:
            del self._dirty[line]
            return True
        return False

    def drop_allocation(self, alloc_id: int) -> None:
        """Forget all dirty lines of a freed allocation (no write-back)."""
        stale = [l for l in self._dirty if l[0] == alloc_id]
        for l in stale:
            del self._dirty[l]
