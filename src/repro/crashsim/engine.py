"""End-to-end crash simulation: record → enumerate → classify → correlate.

:func:`simulate_program` runs one corpus program through the whole loop —
execute under a :class:`~repro.crashsim.trace.TraceRecorder`, enumerate
every crash image legal under the program's persistency model, classify
each against the program's registered oracle, then run the static checker
on the very same module and correlate: an invariant annotated with a
bug's ``file:line`` that fails on some image gives that bug a "validated
by crash image #k" verdict next to its static warning.

:func:`simulate_programs` fans the per-program simulations out across the
shared process-pool executor (:func:`repro.parallel.executor.run_tasks`),
shipping back JSON-able payloads whose worker spans and metrics merge
into the parent telemetry — the same scheme ``deepmc corpus --jobs N``
uses, with the same guarantee: results come back in submission order, so
parallel output is byte-identical to serial.

Everything in :meth:`CrashSimReport.to_dict` is deterministic (counts,
indices, coordinates — never wall-clock), which is what lets the CLI
promise stable ``--format json`` output.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..deadline import Deadline
from ..telemetry import NULL_TELEMETRY, Span, Telemetry
from ..vm.engine import resolve_engine, use_engine
from .enumerate import Enumeration, enumerate_crash_images
from .oracle import (
    FAILING_OUTCOMES,
    OUTCOMES,
    Oracle,
    classify_image,
)
from .trace import record_trace

#: enumeration defaults, shared by the CLI flags
DEFAULT_MAX_STATES = 4096
DEFAULT_MAX_LINES = 14


def count_failing_images(enumeration: Enumeration, oracle: Oracle,
                         recording, module) -> int:
    """Number of enumerated images ``oracle`` classifies as failing.

    The boiled-down enumerate→classify loop shared by the chaos
    invariants ("an injected NVM fault must surface as a failing image")
    and the fuzz differential oracle ("a seeded persistency bug must
    surface as a failing image"). ``recording`` is the interpreter that
    produced the trace (its allocations give images their shape).
    """
    failing = 0
    for img in enumeration.images:
        verdict = classify_image(img, oracle, recording, module)
        if verdict.outcome in FAILING_OUTCOMES:
            failing += 1
    return failing


@dataclass
class CrashSimReport:
    """Result of crash-simulating one program.

    A report whose deadline budget expired mid-run is a *well-formed
    partial result*: ``deadline_exceeded`` is set, ``truncated`` is set,
    ``classified`` says how many of the enumerated images were actually
    classified (``None`` means all of them), and every populated field —
    outcomes, failing images, validations — covers exactly that classified
    prefix. The two degradation keys appear in ``to_dict()`` only when a
    deadline actually fired, so complete reports keep the schema the
    golden files pin.
    """

    program: str
    framework: str
    model: str
    fixed: bool
    events: int
    crash_points: int
    states: int
    pruned: int
    truncated: bool
    outcomes: Dict[str, int]
    #: failing images: {image, event, outcome, failed, error?}
    failing: List[Dict[str, Any]] = field(default_factory=list)
    #: per annotated bug: {file, line, rule, invariant, warning_reported,
    #: crash_image, validated}
    validations: List[Dict[str, Any]] = field(default_factory=list)
    #: True when a cooperative deadline cut enumeration/classification
    deadline_exceeded: bool = False
    #: images classified before the budget ran out (None = all)
    classified: Optional[int] = None

    @property
    def failing_count(self) -> int:
        return len(self.failing)

    @property
    def validated_count(self) -> int:
        return sum(1 for v in self.validations if v["validated"])

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "program": self.program,
            "framework": self.framework,
            "model": self.model,
            "fixed": self.fixed,
            "events": self.events,
            "crash_points": self.crash_points,
            "states": self.states,
            "pruned": self.pruned,
            "truncated": self.truncated,
            "outcomes": dict(self.outcomes),
            "failing": list(self.failing),
            "validations": list(self.validations),
        }
        if self.deadline_exceeded:
            out["deadline_exceeded"] = True
            out["classified"] = self.classified
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CrashSimReport":
        return cls(**data)


def simulate_program(
    name: str,
    fixed: bool = False,
    max_states: int = DEFAULT_MAX_STATES,
    max_lines: int = DEFAULT_MAX_LINES,
    telemetry: Optional[Telemetry] = None,
    engine: Optional[str] = None,
    deadline: Optional[Deadline] = None,
) -> CrashSimReport:
    """Crash-simulate one corpus program by registry name.

    ``deadline`` (optional) is the cooperative budget threaded through
    both heavy stages: enumeration polls it at crash-point boundaries,
    classification between images. On expiry the report is a well-formed
    partial — everything classified so far, ``truncated`` and
    ``deadline_exceeded`` set — never a torn result.
    """
    from ..corpus import REGISTRY

    program = REGISTRY.program(name)
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    oracle: Oracle = getattr(program, "oracle", None) or Oracle()
    with use_engine(engine), \
            tel.span("crashsim.program", program=name, fixed=fixed) as sp:
        module = program.build(fixed=fixed)
        model = module.persistency_model or program.model
        trace = record_trace(module, entry=program.entry or "main",
                             telemetry=tel)
        enum = enumerate_crash_images(trace, model, max_states=max_states,
                                      max_lines=max_lines, deadline=deadline)
        outcomes = {o: 0 for o in OUTCOMES}
        failing: List[Dict[str, Any]] = []
        #: first failing image per violated invariant description
        first_failure: Dict[str, int] = {}
        classified = 0
        classify_cut = False
        for img in enum.images:
            if deadline is not None and deadline.expired():
                classify_cut = True
                break
            verdict = classify_image(img, oracle, trace.interpreter, module)
            classified += 1
            outcomes[verdict.outcome] += 1
            if verdict.outcome in FAILING_OUTCOMES:
                entry: Dict[str, Any] = {
                    "image": verdict.image,
                    "event": verdict.event_index,
                    "outcome": verdict.outcome,
                    "failed": list(verdict.failed),
                }
                if verdict.error:
                    entry["error"] = verdict.error
                failing.append(entry)
                for desc in verdict.failed:
                    first_failure.setdefault(desc, verdict.image)
        validations = _correlate(program, module, oracle, first_failure)
        deadline_exceeded = enum.deadline_exceeded or classify_cut
        sp.set("model", model)
        sp.set("states", enum.states)
        sp.set("failing", len(failing))
        if deadline_exceeded:
            sp.set("deadline_exceeded", True)
    tel.metrics.counter("crashsim.states").inc(enum.states)
    tel.metrics.counter("crashsim.pruned").inc(enum.pruned)
    tel.metrics.counter("crashsim.failures").inc(len(failing))
    if deadline_exceeded:
        tel.metrics.counter("crashsim.deadline_exceeded").inc()
    return CrashSimReport(
        program=name,
        framework=program.framework,
        model=model,
        fixed=fixed,
        events=len(trace.events),
        crash_points=enum.crash_points,
        states=enum.states,
        pruned=enum.pruned,
        truncated=enum.truncated or deadline_exceeded,
        outcomes=outcomes,
        failing=failing,
        validations=validations,
        deadline_exceeded=deadline_exceeded,
        classified=classified if deadline_exceeded else None,
    )


def _correlate(program, module, oracle: Oracle,
               first_failure: Dict[str, int]) -> List[Dict[str, Any]]:
    """Tie failing invariants back to static-checker warnings.

    For every ``validates`` coordinate on every invariant: did the static
    checker warn at that file:line on this very module, and did some
    crash image make the invariant fail? Both together = validated.
    """
    coords = [(inv, c) for inv in oracle.invariants for c in inv.validates]
    if not coords:
        return []
    from .. import check_module

    report = check_module(module)
    out = []
    for inv, (file, line) in coords:
        bug = next((b for b in program.bugs
                    if b.file == file and b.line == line), None)
        rule = bug.rule_id if bug is not None else None
        if rule is not None:
            warned = report.has(rule, file, line)
        else:
            warned = any(w.loc.file == file and w.loc.line == line
                         for w in report.warnings())
        image = first_failure.get(inv.description)
        out.append({
            "file": file,
            "line": line,
            "rule": rule,
            "invariant": inv.description,
            "warning_reported": warned,
            "crash_image": image,
            "validated": warned and image is not None,
        })
    return out


# -- parallel fan-out -------------------------------------------------------

def _crashsim_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: simulate one program by name.

    Module-level (picklable) and self-contained, like the corpus check
    worker; ships spans/metrics back for the parent to merge.
    """
    name = task["name"]
    try:
        tel = Telemetry() if task.get("telemetry") else None
        report = simulate_program(
            name,
            fixed=task.get("fixed", False),
            max_states=task.get("max_states", DEFAULT_MAX_STATES),
            max_lines=task.get("max_lines", DEFAULT_MAX_LINES),
            telemetry=tel,
            engine=task.get("engine"),
        )
        return {
            "name": name,
            "ok": True,
            "result": report.to_dict(),
            "span": (tel.tracer.roots[-1].to_dict()
                     if tel is not None and tel.tracer.roots else None),
            "metrics": tel.metrics.dump() if tel is not None else None,
        }
    except Exception:
        return {"name": name, "ok": False, "error": traceback.format_exc()}


def simulate_programs(
    names: List[str],
    fixed: bool = False,
    jobs: int = 1,
    max_states: int = DEFAULT_MAX_STATES,
    max_lines: int = DEFAULT_MAX_LINES,
    telemetry: Optional[Telemetry] = None,
    engine: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Simulate the named programs, fanning out across ``jobs`` workers.

    Returns one payload per program in input order: ``{"name", "ok",
    "result"}`` on success, ``{"name", "ok": False, "error"}`` on worker
    failure. With ``jobs <= 1`` the programs run in-process against
    ``telemetry`` itself (so sinks see live events, like the serial
    corpus driver); with a pool, worker spans and metrics are shipped
    back and merged. Either way stdout-relevant payloads are identical.
    """
    from ..parallel.executor import run_tasks

    if jobs <= 1:
        payloads: List[Dict[str, Any]] = []
        for name in names:
            try:
                report = simulate_program(name, fixed=fixed,
                                          max_states=max_states,
                                          max_lines=max_lines,
                                          telemetry=telemetry,
                                          engine=engine)
                payloads.append({"name": name, "ok": True,
                                 "result": report.to_dict()})
            except Exception:
                payloads.append({"name": name, "ok": False,
                                 "error": traceback.format_exc()})
        return payloads

    # resolve in the parent so workers run the engine the caller saw,
    # regardless of what DEEPMC_ENGINE says in the worker environment
    resolved = resolve_engine(engine)
    tasks = [
        {
            "name": name,
            "fixed": fixed,
            "max_states": max_states,
            "max_lines": max_lines,
            "telemetry": telemetry is not None and telemetry.enabled,
            "engine": resolved,
        }
        for name in names
    ]
    payloads = run_tasks(_crashsim_task, tasks, jobs=jobs,
                         telemetry=telemetry)
    if telemetry is not None:
        for payload in payloads:
            if payload.get("span"):
                telemetry.tracer.adopt(Span.from_dict(payload["span"]))
            if payload.get("metrics"):
                telemetry.metrics.merge(payload["metrics"])
    return payloads


# -- rendering --------------------------------------------------------------

def render_report(report: CrashSimReport) -> str:
    """Human-readable per-program summary (deterministic)."""
    variant = "fixed" if report.fixed else "buggy"
    lines = [
        f"== {report.program} ({report.framework}, {report.model} "
        f"persistency, {variant}) ==",
        f"  trace: {report.events} events, {report.crash_points} crash "
        f"points",
        f"  images: {report.states} enumerated, {report.pruned} pruned"
        + (" (truncated)" if report.truncated else "")
        + (f" (deadline cut: {report.classified} classified)"
           if report.deadline_exceeded else ""),
        "  outcomes: " + "  ".join(
            f"{report.outcomes.get(o, 0)} {o}" for o in OUTCOMES),
    ]
    for f in report.failing:
        what = "; ".join(f["failed"]) or f.get("error", "")
        lines.append(f"  FAILING image #{f['image']} (after event "
                     f"{f['event']}, {f['outcome']}): {what}")
    for v in report.validations:
        where = f"{v['file']}:{v['line']}"
        rule = f" [{v['rule']}]" if v["rule"] else ""
        if v["validated"]:
            lines.append(f"  VALIDATED {where}{rule} by crash image "
                         f"#{v['crash_image']}")
        elif v["crash_image"] is not None:
            lines.append(f"  failing image #{v['crash_image']} at "
                         f"{where}{rule} (no static warning)")
        else:
            lines.append(f"  no failing image for {where}{rule}")
    return "\n".join(lines)


def render_results(payloads: List[Dict[str, Any]]) -> str:
    """Render all program payloads plus a summary line."""
    blocks = []
    total_failing = 0
    validated = 0
    annotated = 0
    for payload in payloads:
        if not payload.get("ok"):
            blocks.append(f"== {payload['name']} ==\n  ERROR: "
                          + payload["error"].strip().splitlines()[-1])
            continue
        report = CrashSimReport.from_dict(payload["result"])
        blocks.append(render_report(report))
        total_failing += report.failing_count
        validated += report.validated_count
        annotated += len(report.validations)
    blocks.append(
        f"crashsim: {len(payloads)} program(s), {total_failing} failing "
        f"image(s), {validated}/{annotated} annotated bugs validated"
    )
    return "\n".join(blocks)


def results_payload(payloads: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The stable ``--format json`` document (schema-tested)."""
    programs = []
    total_failing = 0
    validated = 0
    annotated = 0
    errors = []
    for payload in payloads:
        if not payload.get("ok"):
            errors.append({"program": payload["name"],
                           "error": payload["error"]})
            continue
        programs.append(payload["result"])
        report = CrashSimReport.from_dict(payload["result"])
        total_failing += report.failing_count
        validated += report.validated_count
        annotated += len(report.validations)
    doc: Dict[str, Any] = {
        "programs": programs,
        "summary": {
            "programs": len(payloads),
            "failing_images": total_failing,
            "validated": validated,
            "annotated": annotated,
        },
    }
    if errors:
        doc["errors"] = errors
    return doc
