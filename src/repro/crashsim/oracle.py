"""Recovery oracles: classify what each crash image means.

A crash image by itself is just bytes; an *oracle* says whether those
bytes are a state the program's recovery story can live with. Oracles are
WITCHER-style output checkers specialized to a program:

* a tuple of :class:`Invariant` predicates over the durable image
  ("``nbuckets`` is set whenever any bucket is non-empty"), each
  optionally annotated with the ``file:line`` of the corpus bug it
  *validates* — the hook that turns a static warning into a "validated by
  crash image #k" verdict;
* optionally a ``recovery_entry``: the name of an IR function that is run
  in a fresh VM seeded with the crash image (one pointer argument per
  persistent allocation, in allocation order) to perform application-
  level repair before the invariants are re-checked. It runs only on
  images in which every allocation already exists — a crash before the
  pool is created has nothing to repair.

Classification of one image:

1. check the invariants on the raw image (*pre* state);
2. apply recovery — undo-log rollback of every transaction open at the
   crash (mirroring PMDK/NVM-Direct recovery, and matching
   :meth:`repro.vm.crash.CrashState.recovered`), then the VM
   ``recovery_entry`` if the oracle names one;
3. re-check the invariants on the *post* state.

===========  ==========  =====================================
pre          post        outcome
===========  ==========  =====================================
ok           ok          ``consistent``
violated     ok          ``recovered`` (detected and repaired)
—            violated    ``corrupted`` (silent corruption)
—            crashed     ``recovery-crash``
===========  ==========  =====================================

Invariant checks must tolerate images from early crash points where some
allocations do not exist yet (their ``PersistentObject.durable`` is
empty) — return True for states they cannot judge. An exception raised
while checking the *post* state counts as a recovery crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..errors import VMError
from ..ir.module import Module
from ..vm.crash import CrashState
from ..vm.engine import make_interpreter
from ..vm.interpreter import Interpreter
from .enumerate import CrashImage, OpenTx

CONSISTENT = "consistent"
RECOVERED = "recovered"
CORRUPTED = "corrupted"
RECOVERY_CRASH = "recovery-crash"
#: every classification, in severity order
OUTCOMES = (CONSISTENT, RECOVERED, CORRUPTED, RECOVERY_CRASH)
#: outcomes that make an image a *failing* image
FAILING_OUTCOMES = (CORRUPTED, RECOVERY_CRASH)


@dataclass(frozen=True)
class Invariant:
    """One durable-consistency predicate over a crash image."""

    description: str
    check: Callable[[CrashState], bool]
    #: corpus bug coordinates this invariant validates when it fails
    validates: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class Oracle:
    """A program's recovery contract: invariants + optional VM recovery."""

    invariants: Tuple[Invariant, ...] = ()
    recovery_entry: Optional[str] = None


@dataclass
class Verdict:
    """Classification of one crash image."""

    image: int
    event_index: int
    outcome: str
    #: descriptions of invariants violated in the post-recovery state
    failed: Tuple[str, ...] = ()
    error: Optional[str] = None


def rollback_open_tx(image: Dict[int, bytes],
                     open_tx: Tuple[OpenTx, ...]) -> Dict[int, bytes]:
    """Undo-log recovery: restore every logged range of every open tx."""
    img = {aid: bytearray(b) for aid, b in image.items()}
    for tx in open_tx:
        for lr in tx.logged:
            buf = img.get(lr.alloc)
            if buf is not None:
                buf[lr.offset: lr.offset + lr.size] = lr.snapshot
    return {aid: bytes(b) for aid, b in img.items()}


def run_recovery_entry(module: Module, entry: str, image: Dict[int, bytes],
                       recording: Interpreter) -> CrashState:
    """Run ``entry`` in a fresh VM whose NVM is seeded from ``image``.

    The function receives one pointer per persistent allocation of the
    recorded run, in allocation order. Its repairs count only if it
    persists them (flush + fence): the returned state is the recovery
    VM's *durable* image — recovery code is held to the same persistency
    rules as the code it repairs.
    """
    interp = make_interpreter(module)
    ptrs = []
    for aid, alloc in sorted(recording.memory.persistent_allocations().items()):
        data = image.get(aid)
        if data is None:
            continue
        p = interp.memory.alloc(len(data), persistent=True,
                                elem_type=alloc.elem_type, label=alloc.label)
        interp.domain.on_palloc(p.alloc_id, len(data))
        interp.memory.write_bytes(p, bytes(data))
        interp.domain.on_store(p.alloc_id, 0, len(data))
        interp.domain.flush(p.alloc_id, 0, len(data))
        ptrs.append(p)
    interp.domain.fence()  # the seed image is durable before recovery runs
    result = interp.run(entry, ptrs)
    if result.crashed:
        raise VMError(f"recovery entry @{entry} crashed")
    return CrashState(interp)


def _eval(oracle: Oracle, state: CrashState) -> Tuple[bool, Tuple[str, ...]]:
    failed = tuple(inv.description for inv in oracle.invariants
                   if not inv.check(state))
    return not failed, failed


def classify_image(crash_image: CrashImage, oracle: Oracle,
                   recording: Interpreter,
                   module: Optional[Module] = None) -> Verdict:
    """Classify one enumerated image against an oracle (see module doc)."""
    pre = CrashState(recording, dict(crash_image.image))
    try:
        pre_ok, _ = _eval(oracle, pre)
    except Exception:
        # an invariant that cannot even read the raw image marks it
        # inconsistent-before-recovery; recovery still gets its chance
        pre_ok = False
    recovered_image = rollback_open_tx(crash_image.image,
                                       crash_image.open_tx)
    # the VM recovery entry only makes sense once the pool it repairs
    # exists: images from crash points before some allocation get
    # rollback-only recovery (there is nothing for the entry to open)
    all_allocs = set(recording.memory.persistent_allocations())
    run_entry = bool(oracle.recovery_entry) \
        and all_allocs <= set(recovered_image)
    try:
        if run_entry:
            post = run_recovery_entry(module or recording.module,
                                      oracle.recovery_entry,
                                      recovered_image, recording)
        else:
            post = CrashState(recording, recovered_image)
        post_ok, failed = _eval(oracle, post)
    except Exception as exc:
        return Verdict(crash_image.index, crash_image.event_index,
                       RECOVERY_CRASH, error=f"{type(exc).__name__}: {exc}")
    if post_ok:
        return Verdict(crash_image.index, crash_image.event_index,
                       CONSISTENT if pre_ok else RECOVERED)
    return Verdict(crash_image.index, crash_image.event_index,
                   CORRUPTED, failed=failed)
