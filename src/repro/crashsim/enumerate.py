"""Crash-image enumeration from a recorded persist-event trace.

Given a :class:`~repro.crashsim.trace.PersistTrace`, replay the event
stream through a model of the persist pipeline and, at every event prefix
(= crash point), enumerate the durable images a real power failure could
expose under the active persistency model:

* **strict** (PMDK, NVM-Direct): the durable base plus any subset of the
  *pending* lines — flushed (``clwb``) but not yet fenced. ``clwb``
  completion is unordered until the fence, so each subset is legal; lines
  a fence already drained are in the base of every later image (the
  fence-ordered prefix).
* **epoch** (PMFS, Mnemosyne): additionally, any subset of the lines
  *dirtied in the current epoch* (since the last fence). Epoch persistency
  only orders across epoch boundaries, so within the open epoch a write-
  back may race ahead of an explicit flush. Unflushed lines from *earlier*
  epochs are deliberately excluded: enumerating spontaneous eviction of
  arbitrarily old writes would be legal but explodes the space without
  exercising the bug patterns the corpus models (the ``strand`` model is
  treated like epoch here).

Pruning keeps enumeration tractable:

* **persist-equivalence**: a candidate line whose architectural content
  already equals its durable content is a no-op — including or excluding
  it yields the same image — so it is dropped before subsetting, halving
  the space per such line;
* **dedup**: images are hashed together with the open-transaction state
  (two byte-identical images recover differently if one still has an
  undo log to roll back) and each equivalence class is emitted once, at
  its first crash point;
* **budget**: a per-crash-point candidate cap (above it only the two
  extreme images — nothing / everything persisted — are emitted) and a
  global ``max_states`` budget; both set ``truncated``.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..deadline import Deadline
from ..ir.instructions import REGION_TX
from ..nvm.cacheline import LineId, line_span, lines_covering
from .trace import PersistTrace, TraceEvent

#: models whose in-epoch dirty lines are enumeration candidates
_EPOCH_LIKE = ("epoch", "strand")


@dataclass(frozen=True)
class LoggedRange:
    """One ``txadd``-logged range: where, and the pre-modification bytes."""

    alloc: int
    offset: int
    size: int
    snapshot: bytes


@dataclass(frozen=True)
class OpenTx:
    """A durable transaction still open at the crash point."""

    thread: int
    region: int
    logged: Tuple[LoggedRange, ...]


@dataclass
class CrashImage:
    """One enumerated durable image.

    ``index`` is the stable 1-based "crash image #k" the CLI and the
    validation verdicts refer to. ``event_index`` is the crash point: the
    image is legal after replaying ``trace.events[:event_index]``.
    """

    index: int
    event_index: int
    persisted: Tuple[LineId, ...]
    image: Dict[int, bytes]
    open_tx: Tuple[OpenTx, ...]


@dataclass
class Enumeration:
    """The full result of enumerating one trace.

    ``deadline_exceeded`` marks a *cooperative* truncation: a deadline
    budget ran out mid-enumeration, so ``images`` holds every image
    enumerated so far (each individually complete and legal) and
    ``truncated`` is also set. Budget truncation (``max_states``) leaves
    ``deadline_exceeded`` False.
    """

    images: List[CrashImage]
    crash_points: int
    pruned: int
    truncated: bool
    deadline_exceeded: bool = False

    @property
    def states(self) -> int:
        return len(self.images)


class ReplayState:
    """The persist-pipeline state machine, rebuilt from trace events.

    Mirrors :class:`repro.nvm.domain.PersistDomain` exactly — stores dirty
    lines, flushes move dirty lines into a FIFO pending set, fences drain
    it — but runs on recorded content instead of live memory, and
    additionally tracks what the domain does not need: the set of lines
    dirtied in the current epoch and the per-thread open-transaction undo
    logs (both from the trace's txbegin/txadd/txend events).
    """

    def __init__(self, alloc_sizes: Dict[int, int]):
        self._sizes = dict(alloc_sizes)
        self.durable: Dict[int, bytearray] = {}
        #: latest post-store content per line (tracks architectural memory)
        self.content: Dict[LineId, bytes] = {}
        self.dirty: Dict[LineId, None] = {}
        self.pending: Dict[LineId, None] = {}
        self.epoch_dirty: Dict[LineId, None] = {}
        #: per-thread stack of [region_id, [LoggedRange, ...]]
        self._tx: Dict[int, List[list]] = {}

    # -- event application --------------------------------------------------
    def apply(self, ev: TraceEvent) -> None:
        if ev.kind == "palloc":
            self.durable[ev.alloc] = bytearray(ev.size)
        elif ev.kind == "pfree":
            self.durable.pop(ev.alloc, None)
            for coll in (self.content, self.dirty, self.pending,
                         self.epoch_dirty):
                for ln in [l for l in coll if l[0] == ev.alloc]:
                    del coll[ln]
        elif ev.kind == "store":
            for ln, data in ev.content.items():
                self.content[ln] = data
                self.dirty[ln] = None
                self.epoch_dirty[ln] = None
        elif ev.kind == "flush":
            for idx in lines_covering(ev.offset, ev.size):
                ln = (ev.alloc, idx)
                if ln in self.dirty:
                    # re-flush of a pending line re-queues it at the tail,
                    # matching the domain's FIFO move_to_end
                    self.pending.pop(ln, None)
                    self.pending[ln] = None
        elif ev.kind == "fence":
            for ln in list(self.pending):
                self._write_back(ln)
            self.pending.clear()
            self.epoch_dirty.clear()
        elif ev.kind == "evict":
            ln = (ev.alloc, ev.line)
            self._write_back(ln)
            self.pending.pop(ln, None)
            self.epoch_dirty.pop(ln, None)
        elif ev.kind == "drop":
            # injected dropped flush: the drain never happened — the line
            # leaves the pending set but stays dirty (a later flush+fence
            # can still persist it)
            self.pending.pop((ev.alloc, ev.line), None)
        elif ev.kind == "torn":
            # injected torn write-back: only the first `keep` bytes of
            # the line reached the device; the line is clean thereafter
            ln = (ev.alloc, ev.line)
            data = self.content.get(ln)
            buf = self.durable.get(ev.alloc)
            if data is not None and buf is not None:
                start, end = line_span(ln[1])
                end = min(end, len(buf))
                keep = max(0, min(ev.keep or 0, end - start, len(data)))
                buf[start:start + keep] = data[:keep]
            self.dirty.pop(ln, None)
            self.pending.pop(ln, None)
        elif ev.kind == "txbegin" and ev.region_kind == REGION_TX:
            self._tx.setdefault(ev.thread, []).append([ev.region, []])
        elif ev.kind == "txadd":
            stack = self._tx.get(ev.thread)
            if stack:
                stack[-1][1].append(
                    LoggedRange(ev.alloc, ev.offset, ev.size, ev.snapshot))
        elif ev.kind == "txend" and ev.region_kind == REGION_TX:
            stack = self._tx.get(ev.thread, [])
            for i in range(len(stack) - 1, -1, -1):
                if stack[i][0] == ev.region:
                    del stack[i]
                    break

    def _write_back(self, ln: LineId) -> None:
        data = self.content.get(ln)
        buf = self.durable.get(ln[0])
        if data is None or buf is None:
            return
        start, end = line_span(ln[1])
        end = min(end, len(buf))
        buf[start:end] = data[: end - start]
        self.dirty.pop(ln, None)

    # -- crash-point queries ------------------------------------------------
    def candidates(self, model: str) -> List[LineId]:
        """Lines that may or may not have reached NVM at this instant."""
        out = list(self.pending)
        if model in _EPOCH_LIKE:
            out.extend(l for l in self.epoch_dirty if l not in self.pending)
        return out

    def is_noop(self, ln: LineId) -> bool:
        """True when persisting ``ln`` would not change the image."""
        buf = self.durable.get(ln[0])
        data = self.content.get(ln)
        if buf is None or data is None:
            return True
        start, end = line_span(ln[1])
        end = min(end, len(buf))
        return bytes(buf[start:end]) == data[: end - start]

    def image_for(self, persisted: Tuple[LineId, ...]) -> Dict[int, bytes]:
        image = {aid: bytearray(buf) for aid, buf in self.durable.items()}
        for ln in persisted:
            buf = image.get(ln[0])
            if buf is None:
                continue
            start, end = line_span(ln[1])
            end = min(end, len(buf))
            buf[start:end] = self.content[ln][: end - start]
        return {aid: bytes(b) for aid, b in image.items()}

    def open_tx_snapshot(self) -> Tuple[OpenTx, ...]:
        return tuple(
            OpenTx(thread, region, tuple(logged))
            for thread in sorted(self._tx)
            for region, logged in self._tx[thread]
        )


def _digest(image: Dict[int, bytes], open_tx: Tuple[OpenTx, ...]) -> bytes:
    h = hashlib.sha256()
    for aid in sorted(image):
        h.update(aid.to_bytes(8, "little"))
        h.update(image[aid])
    for tx in open_tx:
        h.update(f"T{tx.thread}:{tx.region}".encode())
        for lr in tx.logged:
            h.update(f"L{lr.alloc}:{lr.offset}:{lr.size}".encode())
            h.update(lr.snapshot)
    return h.digest()


def enumerate_crash_images(
    trace: PersistTrace,
    model: str,
    max_states: int = 4096,
    max_lines: int = 14,
    prune: bool = True,
    deadline: Optional[Deadline] = None,
) -> Enumeration:
    """Enumerate every distinct crash image legal under ``model``.

    Crash points are all event prefixes: before any event (k=0) and after
    each of the N events. ``pruned`` counts legal states *not* emitted for
    equivalence reasons (no-op lines, duplicate images, per-point caps);
    hitting the global ``max_states`` budget sets ``truncated`` instead.

    ``prune=False`` disables both equivalence reductions — no-op candidate
    filtering and cross-point image dedup — and emits one image per legal
    (crash point, candidate subset) pair. The distinct-image set must be
    identical either way (persist-equivalence pruning only drops
    duplicates); the litmus suite asserts exactly that.

    ``deadline`` (optional) is polled at every crash-point boundary: on
    expiry the images enumerated so far come back with ``truncated`` and
    ``deadline_exceeded`` both set — a well-formed partial result, never
    a half-built image.
    """
    replay = ReplayState(trace.alloc_sizes)
    images: List[CrashImage] = []
    seen = set()
    pruned = 0
    truncated = False
    crash_points = len(trace.events) + 1
    for k in range(crash_points):
        if deadline is not None and deadline.expired():
            return Enumeration(images, k, pruned, True,
                               deadline_exceeded=True)
        if k > 0:
            replay.apply(trace.events[k - 1])
        candidates = replay.candidates(model)
        effective = ([l for l in candidates if not replay.is_noop(l)]
                     if prune else list(candidates))
        legal = 2 ** len(candidates)
        if len(effective) > max_lines:
            # combinatorial cliff: keep the two extreme images only
            subsets = [(), tuple(effective)]
            truncated = True
        else:
            subsets = [
                s for r in range(len(effective) + 1)
                for s in itertools.combinations(effective, r)
            ]
        pruned += legal - len(subsets)
        open_tx = replay.open_tx_snapshot()
        for subset in subsets:
            if len(images) >= max_states:
                return Enumeration(images, k + 1, pruned, True)
            image = replay.image_for(subset)
            key = _digest(image, open_tx)
            if key in seen:
                if prune:
                    pruned += 1
                    continue
            else:
                seen.add(key)
            images.append(CrashImage(index=len(images) + 1, event_index=k,
                                     persisted=subset, image=image,
                                     open_tx=open_tx))
    return Enumeration(images, crash_points, pruned, truncated)
