"""Persist-event trace recording for crash-state enumeration.

The interpreter and the persist domain already emit a structured event
stream (``persist.store`` / ``persist.flush`` / ``persist.fence`` / ...)
through the telemetry facade. Crashsim taps that stream with a
:class:`TraceRecorder` sink and — crucially — captures *content* at event
time: the architectural bytes of every cacheline a store touches, and the
pre-modification snapshot of every ``txadd``-logged range. With content in
the trace, the enumeration engine (:mod:`repro.crashsim.enumerate`) can
rebuild any legal durable image offline, without re-executing the program
once per crash point.

Why a sink and not interpreter hooks: the event stream is the already-
stable contract between the VM and observability (docs/OBSERVABILITY.md);
riding it means crashsim sees exactly the order the hardware model
committed to, including commit-time flushes that library code issues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..ir.module import Module
from ..nvm.cacheline import LineId, lines_covering
from ..telemetry import Telemetry
from ..telemetry.sinks import Sink
from ..vm.engine import make_interpreter
from ..vm.interpreter import ExecResult, Interpreter


@dataclass
class TraceEvent:
    """One persist-relevant event, with content captured at event time.

    ``kind`` is the event name without the ``persist.`` prefix: one of
    ``palloc``, ``pfree``, ``store``, ``flush``, ``fence``, ``evict``,
    ``txbegin``, ``txadd``, ``txend`` — plus the injected-fault kinds
    ``drop`` (a fence drain silently lost a line) and ``torn`` (a drain
    persisted only the first ``keep`` bytes of its line). Only the
    fields relevant to each kind are set.
    """

    index: int
    kind: str
    alloc: Optional[int] = None
    offset: Optional[int] = None
    size: Optional[int] = None
    thread: Optional[int] = None
    region: Optional[int] = None
    region_kind: Optional[str] = None
    #: affected line index (``evict``/``drop``/``torn`` only)
    line: Optional[int] = None
    #: bytes that reached the device (``torn`` only)
    keep: Optional[int] = None
    #: post-store content of every covered cacheline (``store`` only)
    content: Dict[LineId, bytes] = field(default_factory=dict)
    #: pre-modification bytes of the logged range (``txadd`` only)
    snapshot: Optional[bytes] = None


class TraceRecorder(Sink):
    """Telemetry sink that captures the persist-event stream.

    Must be :meth:`attach`-ed to the interpreter before the run so store
    and txadd events can read line/range content synchronously — the
    architectural memory at event-receipt time is exactly the post-store
    (resp. pre-modification) content the replay needs.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        #: allocation sizes, never forgotten (unlike the live domain,
        #: which drops them at pfree) — replay needs them for any prefix.
        self.alloc_sizes: Dict[int, int] = {}
        self._interp: Optional[Interpreter] = None

    def attach(self, interpreter: Interpreter) -> None:
        self._interp = interpreter

    # -- Sink interface -----------------------------------------------------
    def emit(self, payload: Dict[str, Any]) -> None:
        kind = payload.get("event", "")
        if not kind.startswith("persist."):
            return
        short = kind[len("persist."):]
        ev = TraceEvent(index=len(self.events), kind=short)
        if short == "palloc":
            ev.alloc, ev.size = payload["alloc"], payload["size"]
            self.alloc_sizes[ev.alloc] = ev.size
        elif short == "pfree":
            ev.alloc = payload["alloc"]
        elif short == "store":
            ev.alloc = payload["alloc"]
            ev.offset, ev.size = payload["offset"], payload["size"]
            ev.content = self._capture_lines(ev.alloc, ev.offset, ev.size)
        elif short == "flush":
            ev.alloc = payload["alloc"]
            ev.offset, ev.size = payload["offset"], payload["size"]
        elif short == "fence":
            pass
        elif short == "evict":
            ev.alloc, ev.line = payload["alloc"], payload["line"]
        elif short == "drop":
            ev.alloc, ev.line = payload["alloc"], payload["line"]
        elif short == "torn":
            ev.alloc, ev.line = payload["alloc"], payload["line"]
            ev.keep = payload["keep"]
        elif short in ("txbegin", "txend"):
            ev.thread = payload["thread"]
            ev.region_kind = payload["region_kind"]
            ev.region = payload["region"]
        elif short == "txadd":
            ev.thread, ev.alloc = payload["thread"], payload["alloc"]
            ev.offset, ev.size = payload["offset"], payload["size"]
            ev.snapshot = self._read(ev.alloc, ev.offset,
                                     ev.offset + ev.size)
        else:  # future event kinds pass through un-modelled
            return
        self.events.append(ev)

    # -- content capture ----------------------------------------------------
    def _capture_lines(self, alloc: int, offset: int,
                       size: int) -> Dict[LineId, bytes]:
        assert self._interp is not None, "recorder not attached"
        domain = self._interp.domain
        return {
            (alloc, idx): domain.line_bytes((alloc, idx))
            for idx in lines_covering(offset, size)
        }

    def _read(self, alloc: int, start: int, end: int) -> bytes:
        assert self._interp is not None, "recorder not attached"
        return self._interp.memory.read_alloc_bytes(alloc, start, end)


@dataclass
class PersistTrace:
    """A recorded execution: the event stream plus run metadata."""

    events: List[TraceEvent]
    alloc_sizes: Dict[int, int]
    result: ExecResult

    @property
    def interpreter(self) -> Interpreter:
        return self.result.interpreter

    def __len__(self) -> int:
        return len(self.events)


def record_trace(module: Module, entry: str = "main",
                 args: Sequence[Any] = (),
                 telemetry: Optional[Telemetry] = None,
                 engine: Optional[str] = None,
                 **interp_kwargs: Any) -> PersistTrace:
    """Execute ``entry`` once and return its persist-event trace.

    The run uses a private Telemetry whose only sink is the recorder, so
    recording composes with (and never pollutes) any caller telemetry.
    When a caller ``telemetry`` is supplied, the private run's metrics
    (``vm.*`` stats, ``vm.op.*`` profiler counters) are folded into it
    after the run — the serial path mirrors what the parallel path gets
    from merged worker dumps, so op counters stay identical across
    ``--jobs`` values. The VM op profiler runs only when a caller cares
    (enabled ``telemetry``), keeping unobserved recordings at full
    speed.
    """
    recorder = TraceRecorder()
    tel = Telemetry(sinks=[recorder])
    observed = telemetry is not None and telemetry.enabled
    interp_kwargs.setdefault("op_profile", observed)
    interp = make_interpreter(module, engine=engine, telemetry=tel,
                              **interp_kwargs)
    recorder.attach(interp)
    result = interp.run(entry, args)
    if observed:
        telemetry.metrics.merge(tel.metrics.dump())
    return PersistTrace(events=recorder.events,
                        alloc_sizes=dict(recorder.alloc_sizes),
                        result=result)
