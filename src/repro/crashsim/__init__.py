"""Crash-state enumeration with recovery validation (``deepmc crashsim``).

The subsystem that closes the loop from a reported violation to a
demonstrated crash-consistency failure, in the spirit of WITCHER's
output-oracle validation over systematically enumerated crash images:

1. :mod:`~repro.crashsim.trace` — record a program's persist-event
   stream (stores/flushes/fences/transactions) with content captured at
   event time;
2. :mod:`~repro.crashsim.enumerate` — replay the trace and enumerate
   every durable image legal under the active persistency model, with
   persist-equivalence pruning, image dedup, and a state budget;
3. :mod:`~repro.crashsim.oracle` — classify each image against the
   program's recovery contract: consistent / recovered / corrupted /
   recovery-crash;
4. :mod:`~repro.crashsim.engine` — correlate failing images back to the
   static checker's warnings ("validated by crash image #k") and fan the
   per-program simulations out across the parallel executor.

See docs/CRASHSIM.md for semantics and a CLI walkthrough.
"""

from .enumerate import (
    CrashImage,
    Enumeration,
    LoggedRange,
    OpenTx,
    ReplayState,
    enumerate_crash_images,
)
from .oracle import (
    CONSISTENT,
    CORRUPTED,
    FAILING_OUTCOMES,
    OUTCOMES,
    RECOVERED,
    RECOVERY_CRASH,
    Invariant,
    Oracle,
    Verdict,
    classify_image,
    rollback_open_tx,
    run_recovery_entry,
)
from .engine import (
    DEFAULT_MAX_LINES,
    DEFAULT_MAX_STATES,
    CrashSimReport,
    count_failing_images,
    render_report,
    render_results,
    results_payload,
    simulate_program,
    simulate_programs,
)
from .trace import PersistTrace, TraceEvent, TraceRecorder, record_trace

__all__ = [
    "CONSISTENT",
    "CORRUPTED",
    "CrashImage",
    "CrashSimReport",
    "DEFAULT_MAX_LINES",
    "DEFAULT_MAX_STATES",
    "Enumeration",
    "FAILING_OUTCOMES",
    "Invariant",
    "LoggedRange",
    "OpenTx",
    "OUTCOMES",
    "Oracle",
    "PersistTrace",
    "RECOVERED",
    "RECOVERY_CRASH",
    "ReplayState",
    "TraceEvent",
    "TraceRecorder",
    "Verdict",
    "classify_image",
    "count_failing_images",
    "enumerate_crash_images",
    "record_trace",
    "render_report",
    "render_results",
    "results_payload",
    "rollback_open_tx",
    "run_recovery_entry",
    "simulate_program",
    "simulate_programs",
]
