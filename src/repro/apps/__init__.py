"""Real-application workloads (Table 6): Memcached, Redis, NStore."""

from typing import Callable, Dict, List

from ..ir.module import Module
from .memcached import build_memcached
from .nstore import build_nstore
from .redis import build_redis
from .workloads import (
    ALL_MIXES,
    MEMCACHED_MIXES,
    REDIS_MIXES,
    YCSB_MIXES,
    Mix,
    mix,
)

#: app name -> builder(mix) -> Module with entry main(ops)
APP_BUILDERS: Dict[str, Callable[[Mix], Module]] = {
    "memcached": build_memcached,
    "redis": build_redis,
    "nstore": build_nstore,
}

__all__ = [
    "ALL_MIXES",
    "APP_BUILDERS",
    "MEMCACHED_MIXES",
    "Mix",
    "REDIS_MIXES",
    "YCSB_MIXES",
    "build_memcached",
    "build_nstore",
    "build_redis",
    "mix",
]
