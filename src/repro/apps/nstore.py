"""NStore: a transactional storage engine on raw persistence primitives
(Table 6 row 3 — "low-level implts").

Tuples live in a persistent slot array; every mutation follows strict
per-write flush+fence discipline directly (no framework), the way NStore's
NVM engines issue clwb/sfence themselves. YCSB drives it.
"""

from __future__ import annotations

from ..corpus.util import counted_loop
from ..ir import types as ty
from ..ir.builder import IRBuilder
from ..ir.module import Module
from .driver import emit_driver_loop
from .workloads import Mix

TABLE_SIZE = 256
SCAN_LEN = 8


def build_nstore(mix: Mix, table_size: int = TABLE_SIZE) -> Module:
    """Build the nstore module for one YCSB mix; entry: main(ops)."""
    mod = Module(f"nstore[{mix.name}]", persistency_model="strict")
    tuple_t = mod.define_struct("ns_tuple", [("key", ty.I64), ("field", ty.I64)])
    tuple_p = ty.pointer_to(tuple_t)
    SRC = "nstore_pm.c"

    # -- update: strict write→flush→fence per field -------------------------
    update_fn = mod.define_function(
        "ns_update", ty.VOID,
        [("table", tuple_p), ("key", ty.I64), ("value", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(update_fn)
    idx = b.binop("srem", update_fn.arg("key"), b.const(table_size), line=30)
    t = b.getelem(update_fn.arg("table"), idx, line=31)
    ff = b.getfield(t, "field", line=32)
    b.store(update_fn.arg("value"), ff, line=32)
    b.flush(ff, 8, line=33)
    b.fence(line=34)
    b.ret()

    # -- insert: key then payload, each persisted in program order ----------
    insert_fn = mod.define_function(
        "ns_insert", ty.VOID,
        [("table", tuple_p), ("key", ty.I64), ("value", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(insert_fn)
    idx = b.binop("srem", insert_fn.arg("key"), b.const(table_size), line=50)
    t = b.getelem(insert_fn.arg("table"), idx, line=51)
    kf = b.getfield(t, "key", line=52)
    b.store(insert_fn.arg("key"), kf, line=52)
    b.flush(kf, 8, line=53)
    b.fence(line=53)
    ff = b.getfield(t, "field", line=54)
    b.store(insert_fn.arg("value"), ff, line=54)
    b.flush(ff, 8, line=55)
    b.fence(line=55)
    b.ret()

    # -- read -----------------------------------------------------------------
    read_fn = mod.define_function(
        "ns_read", ty.I64, [("table", tuple_p), ("key", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(read_fn)
    idx = b.binop("srem", read_fn.arg("key"), b.const(table_size), line=70)
    t = b.getelem(read_fn.arg("table"), idx, line=71)
    ff = b.getfield(t, "field", line=72)
    v = b.load(ff, line=72)
    b.ret(v, line=73)

    # -- scan: YCSB-E range read ------------------------------------------------
    scan_fn = mod.define_function(
        "ns_scan", ty.I64, [("table", tuple_p), ("start", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(scan_fn)
    acc = b.alloca(ty.I64, line=90)
    b.store(0, acc, line=90)

    def scan_body(b: IRBuilder, iv) -> None:
        pos = b.add(scan_fn.arg("start"), iv, line=92)
        idx = b.binop("srem", pos, b.const(table_size), line=92)
        t = b.getelem(scan_fn.arg("table"), idx, line=93)
        ff = b.getfield(t, "field", line=93)
        v = b.load(ff, line=93)
        cur = b.load(acc, line=94)
        b.store(b.add(cur, v, line=94), acc, line=94)

    counted_loop(b, SCAN_LEN, scan_body, line=91)
    total = b.load(acc, line=96)
    b.ret(total, line=96)

    # -- rmw ----------------------------------------------------------------------
    rmw_fn = mod.define_function(
        "ns_rmw", ty.VOID, [("table", tuple_p), ("key", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(rmw_fn)
    old = b.call(read_fn, [rmw_fn.arg("table"), rmw_fn.arg("key")], line=110)
    b.call(update_fn,
           [rmw_fn.arg("table"), rmw_fn.arg("key"), b.add(old, 1, line=111)],
           line=111)
    b.ret()

    # -- main(ops): YCSB client loop -------------------------------------------
    main = mod.define_function("main", ty.I64, [("ops", ty.I64)],
                               source_file=SRC)
    b = IRBuilder(main)
    table = b.palloc(tuple_t, table_size, line=200)

    emitters = {
        "read": lambda bb, key, _c: bb.call(read_fn, [table, key], line=905),
        "update": lambda bb, key, _c: bb.call(
            update_fn, [table, key, bb.add(key, 9, line=906)], line=906),
        "insert": lambda bb, _key, c: bb.call(
            insert_fn, [table, c, bb.const(1)], line=907),
        "scan": lambda bb, key, _c: bb.call(scan_fn, [table, key], line=908),
        "rmw": lambda bb, key, _c: bb.call(rmw_fn, [table, key], line=909),
    }
    emit_driver_loop(b, main, mix, emitters, key_space=table_size)
    b.ret(0, line=990)
    return mod
