"""Shared IR driver-loop emitter for the applications.

Builds ``main(ops)``: a loop that draws a random number per iteration and
dispatches to one of the app's operation emitters according to the mix
weights. Everything executes in IR on the interpreter, so instrumentation
overhead (Fig. 12) is measured on real executed work.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ReproError
from ..ir import types as ty
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.values import Value
from ..corpus.util import counted_loop, if_then_else
from .workloads import Mix

#: an operation emitter: (builder, random key value, op counter value) -> None
OpEmitter = Callable[[IRBuilder, Value, Value], None]


def emit_driver_loop(
    b: IRBuilder,
    main: Function,
    mix: Mix,
    emitters: Dict[str, OpEmitter],
    key_space: int = 256,
    line: int = 900,
) -> None:
    """Emit the per-op dispatch loop into ``main`` (positioned builder)."""
    missing = [op for op in mix.ops() if mix.weight(op) > 0 and op not in emitters]
    if missing:
        raise ReproError(f"mix {mix.name!r} needs unimplemented ops: {missing}")

    opcount = b.alloca(ty.I64, line=line)
    b.store(0, opcount, line=line)

    weighted = [(op, w) for op, w in mix.weights if w > 0]

    def body(b: IRBuilder, _iv) -> None:
        r = b.call("rand", [b.const(100)], ret_type=ty.I64, line=line + 1)
        key = b.call("rand", [b.const(key_space)], ret_type=ty.I64, line=line + 2)
        count = b.load(opcount, line=line + 3)

        def dispatch(b: IRBuilder, remaining: List, threshold: int) -> None:
            op, weight = remaining[0]
            if len(remaining) == 1:
                emitters[op](b, key, count)
                return
            cond = b.icmp("slt", r, threshold + weight, line=line + 4)
            if_then_else(
                b,
                cond,
                lambda bb: emitters[op](bb, key, count),
                lambda bb: dispatch(bb, remaining[1:], threshold + weight),
                line=line + 4,
            )

        dispatch(b, weighted, 0)
        c2 = b.load(opcount, line=line + 8)
        inc = b.add(c2, 1, line=line + 8)
        b.store(inc, opcount, line=line + 8)

    counted_loop(b, main.arg("ops"), body, line=line)
