"""Persistent Redis on mini-PMDK (Table 6 row 2).

A keyspace hash table plus a persistent ring list, with every mutation in
a PMDK durable transaction (strict persistency). The redis-benchmark
commands SET/GET/INCR/LPUSH/LPOP map onto these structures.
"""

from __future__ import annotations

from ..frameworks import PMDK
from ..ir import types as ty
from ..ir.builder import IRBuilder
from ..ir.module import Module
from .driver import emit_driver_loop
from .workloads import Mix

TABLE_SIZE = 256
RING_SIZE = 128


def build_redis(mix: Mix, table_size: int = TABLE_SIZE) -> Module:
    """Build the redis module for one workload mix; entry: main(ops)."""
    mod = Module(f"redis[{mix.name}]", persistency_model="strict")
    pmdk = PMDK(mod)
    entry_t = mod.define_struct("rd_entry", [("key", ty.I64), ("value", ty.I64)])
    list_t = mod.define_struct("rd_list", [("count", ty.I64)])
    entry_p = ty.pointer_to(entry_t)
    list_p = ty.pointer_to(list_t)
    slot_p = ty.pointer_to(ty.I64)
    SRC = "redis_pm.c"

    # -- SET ----------------------------------------------------------------
    set_fn = mod.define_function(
        "rd_set", ty.VOID,
        [("table", entry_p), ("key", ty.I64), ("value", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(set_fn)
    idx = b.binop("srem", set_fn.arg("key"), b.const(table_size), line=50)
    e = b.getelem(set_fn.arg("table"), idx, line=51)
    pmdk.tx_begin(b, line=52)
    pmdk.tx_add(b, e, entry_t.size(), line=53)
    kf = b.getfield(e, "key", line=54)
    b.store(set_fn.arg("key"), kf, line=54)
    vf = b.getfield(e, "value", line=55)
    b.store(set_fn.arg("value"), vf, line=55)
    pmdk.tx_end(b, line=56)
    b.ret()

    # -- GET ----------------------------------------------------------------
    get_fn = mod.define_function(
        "rd_get", ty.I64, [("table", entry_p), ("key", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(get_fn)
    idx = b.binop("srem", get_fn.arg("key"), b.const(table_size), line=70)
    e = b.getelem(get_fn.arg("table"), idx, line=71)
    vf = b.getfield(e, "value", line=72)
    v = b.load(vf, line=72)
    b.ret(v, line=73)

    # -- INCR ----------------------------------------------------------------
    incr_fn = mod.define_function(
        "rd_incr", ty.VOID, [("table", entry_p), ("key", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(incr_fn)
    idx = b.binop("srem", incr_fn.arg("key"), b.const(table_size), line=90)
    e = b.getelem(incr_fn.arg("table"), idx, line=91)
    vf = b.getfield(e, "value", line=92)
    pmdk.tx_begin(b, line=93)
    pmdk.tx_add(b, vf, 8, line=94)
    v = b.load(vf, line=95)
    v2 = b.add(v, 1, line=95)
    b.store(v2, vf, line=95)
    pmdk.tx_end(b, line=96)
    b.ret()

    # -- LPUSH / LPOP over a persistent ring ----------------------------------
    lpush_fn = mod.define_function(
        "rd_lpush", ty.VOID,
        [("lst", list_p), ("ring", slot_p), ("value", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(lpush_fn)
    cf = b.getfield(lpush_fn.arg("lst"), "count", line=110)
    pmdk.tx_begin(b, line=111)
    pmdk.tx_add(b, cf, 8, line=112)
    c = b.load(cf, line=113)
    pos = b.binop("srem", c, b.const(RING_SIZE), line=113)
    slot = b.getelem(lpush_fn.arg("ring"), pos, line=114)
    pmdk.tx_add(b, slot, 8, line=114)
    b.store(lpush_fn.arg("value"), slot, line=115)
    c2 = b.add(c, 1, line=116)
    b.store(c2, cf, line=116)
    pmdk.tx_end(b, line=117)
    b.ret()

    lpop_fn = mod.define_function(
        "rd_lpop", ty.I64, [("lst", list_p), ("ring", slot_p)],
        source_file=SRC,
    )
    b = IRBuilder(lpop_fn)
    cf = b.getfield(lpop_fn.arg("lst"), "count", line=130)
    pmdk.tx_begin(b, line=131)
    pmdk.tx_add(b, cf, 8, line=132)
    c = b.load(cf, line=133)
    has = b.icmp("sgt", c, 0, line=133)
    dec = b.binop("sub", c, b.cast(has, ty.I64, line=134), line=134)
    b.store(dec, cf, line=134)
    pos = b.binop("srem", dec, b.const(RING_SIZE), line=135)
    slot = b.getelem(lpop_fn.arg("ring"), pos, line=135)
    v = b.load(slot, line=136)
    pmdk.tx_end(b, line=137)
    b.ret(v, line=138)

    # -- main(ops): redis-benchmark-style client loop --------------------------
    main = mod.define_function("main", ty.I64, [("ops", ty.I64)],
                               source_file=SRC)
    b = IRBuilder(main)
    table = b.palloc(entry_t, table_size, line=200)
    lst = b.palloc(list_t, line=201)
    ring = b.palloc(ty.I64, RING_SIZE, line=202)

    emitters = {
        "set": lambda bb, key, _c: bb.call(
            set_fn, [table, key, bb.add(key, 3, line=905)], line=905),
        "get": lambda bb, key, _c: bb.call(get_fn, [table, key], line=906),
        "incr": lambda bb, key, _c: bb.call(incr_fn, [table, key], line=907),
        "lpush": lambda bb, key, _c: bb.call(lpush_fn, [lst, ring, key], line=908),
        "lpop": lambda bb, _key, _c: bb.call(lpop_fn, [lst, ring], line=909),
    }
    emit_driver_loop(b, main, mix, emitters, key_space=table_size)
    b.ret(0, line=990)
    return mod
