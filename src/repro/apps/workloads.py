"""Workload definitions for the application benchmarks (Table 6, Fig. 12).

A :class:`Mix` is a weighted distribution over an application's operation
names; the app builders compile it into an IR driver loop that picks an
operation per iteration with the interpreter's deterministic PRNG.

The concrete mixes reproduce the paper's §5.2 setups:

* **memslap** (Memcached): 50%u/50%r, 5%u/95%r, 100%r, 5%i/95%r,
  50%rmw/50%r;
* **redis-benchmark** (Redis): the default single-command benchmarks
  (SET, GET, INCR, LPUSH, LPOP);
* **YCSB** (NStore): workloads A–E.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ReproError


@dataclass(frozen=True)
class Mix:
    """A named operation mix; weights must sum to 100."""

    name: str
    weights: Tuple[Tuple[str, int], ...]

    def __post_init__(self) -> None:
        total = sum(w for _, w in self.weights)
        if total != 100:
            raise ReproError(f"mix {self.name!r} weights sum to {total}, not 100")

    def ops(self) -> List[str]:
        return [op for op, _ in self.weights]

    def weight(self, op: str) -> int:
        for name, w in self.weights:
            if name == op:
                return w
        return 0

    @property
    def write_fraction(self) -> float:
        """Fraction of operations that write NVM (drives Fig 12's shape)."""
        writers = {"update", "insert", "rmw", "set", "incr", "lpush", "lpop"}
        return sum(w for op, w in self.weights if op in writers) / 100.0


def mix(name: str, **weights: int) -> Mix:
    return Mix(name, tuple(sorted(weights.items())))


#: Memcached / memslap mixes (Fig. 12 top; §5.2 list).
MEMCACHED_MIXES: List[Mix] = [
    mix("50%update-50%read", update=50, read=50),
    mix("5%update-95%read", update=5, read=95),
    mix("100%read", read=100),
    mix("5%insert-95%read", insert=5, read=95),
    mix("50%rmw-50%read", rmw=50, read=50),
]

#: Redis default benchmarks (Fig. 12 middle).
REDIS_MIXES: List[Mix] = [
    mix("SET", set=100),
    mix("GET", get=100),
    mix("INCR", incr=100),
    mix("LPUSH", lpush=100),
    mix("LPOP", lpop=100),
]

#: YCSB core workloads for NStore (Fig. 12 bottom).
YCSB_MIXES: List[Mix] = [
    mix("YCSB-A", update=50, read=50),
    mix("YCSB-B", update=5, read=95),
    mix("YCSB-C", read=100),
    mix("YCSB-D", insert=5, read=95),
    mix("YCSB-E", insert=5, scan=95),
]

ALL_MIXES: Dict[str, List[Mix]] = {
    "memcached": MEMCACHED_MIXES,
    "redis": REDIS_MIXES,
    "nstore": YCSB_MIXES,
}
