"""Persistent Memcached on mini-Mnemosyne (Table 6 row 1).

A fixed-size open-addressed hash table whose mutating operations run in
Mnemosyne atomic blocks (durable transactions under epoch persistency),
mirroring the persistent-Memcached port the paper benchmarks with memslap.
"""

from __future__ import annotations

from ..frameworks import Mnemosyne
from ..ir import types as ty
from ..ir.builder import IRBuilder
from ..ir.module import Module
from .driver import emit_driver_loop
from .workloads import Mix

TABLE_SIZE = 256


def build_memcached(mix: Mix, table_size: int = TABLE_SIZE,
                    clients: int = 1) -> Module:
    """Build the memcached module for one workload mix; entry: main(ops).

    ``clients > 1`` spawns memslap-style concurrent client threads over a
    sharded keyspace (the paper's memslap setup uses 4 clients).
    """
    mod = Module(f"memcached[{mix.name}]", persistency_model="epoch")
    mtm = Mnemosyne(mod)
    entry_t = mod.define_struct("mc_entry", [("key", ty.I64), ("value", ty.I64)])
    entry_p = ty.pointer_to(entry_t)
    SRC = "memcached_pm.c"

    # -- mc_set: transactional insert/update ------------------------------
    set_fn = mod.define_function(
        "mc_set", ty.VOID,
        [("table", entry_p), ("key", ty.I64), ("value", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(set_fn)
    idx = b.binop("srem", set_fn.arg("key"), b.const(table_size), line=40)
    e = b.getelem(set_fn.arg("table"), idx, line=41)
    mtm.atomic_begin(b, line=42)
    kf = b.getfield(e, "key", line=43)
    mtm.tm_store(b, kf, set_fn.arg("key"), line=43)
    vf = b.getfield(e, "value", line=44)
    mtm.tm_store(b, vf, set_fn.arg("value"), line=44)
    mtm.atomic_end(b, line=45)
    b.ret()

    # -- mc_get: lock-free read -------------------------------------------
    get_fn = mod.define_function(
        "mc_get", ty.I64, [("table", entry_p), ("key", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(get_fn)
    idx = b.binop("srem", get_fn.arg("key"), b.const(table_size), line=60)
    e = b.getelem(get_fn.arg("table"), idx, line=61)
    vf = b.getfield(e, "value", line=62)
    v = b.load(vf, line=62)
    b.ret(v, line=63)

    # -- mc_rmw: read-modify-write (memslap's "rmw" op) --------------------
    rmw_fn = mod.define_function(
        "mc_rmw", ty.VOID, [("table", entry_p), ("key", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(rmw_fn)
    old = b.call(get_fn, [rmw_fn.arg("table"), rmw_fn.arg("key")], line=80)
    bumped = b.add(old, 1, line=81)
    b.call(set_fn, [rmw_fn.arg("table"), rmw_fn.arg("key"), bumped], line=82)
    b.ret()

    # -- client(table, ops, shard): one memslap connection ------------------
    # Clients shard the keyspace (as memslap does with distinct key
    # prefixes), so concurrent clients never collide on a bucket.
    shard = table_size // max(clients, 1)
    client = mod.define_function(
        "mc_client", ty.I64,
        [("table", entry_p), ("ops", ty.I64), ("base", ty.I64)],
        source_file=SRC,
    )
    b = IRBuilder(client)
    base = client.arg("base")

    def shard_key(bb, key):
        off = bb.binop("srem", key, bb.const(max(shard, 1)), line=904)
        return bb.add(base, off, line=904)

    emitters = {
        "read": lambda bb, key, _c: bb.call(
            get_fn, [client.arg("table"), shard_key(bb, key)], line=905),
        "update": lambda bb, key, _c: bb.call(
            set_fn, [client.arg("table"), shard_key(bb, key),
                     bb.add(key, 7, line=906)], line=906),
        "insert": lambda bb, _key, c: bb.call(
            set_fn, [client.arg("table"),
                     shard_key(bb, c), bb.const(1)], line=907),
        "rmw": lambda bb, key, _c: bb.call(
            rmw_fn, [client.arg("table"), shard_key(bb, key)], line=908),
    }
    emit_driver_loop(b, client, mix, emitters, key_space=table_size)
    b.ret(0, line=920)

    # -- main(ops): spawn the clients, split the op budget -------------------
    main = mod.define_function("main", ty.I64, [("ops", ty.I64)],
                               source_file=SRC)
    b = IRBuilder(main)
    table = b.palloc(entry_t, table_size, line=100)
    per_client = b.binop("sdiv", main.arg("ops"),
                         b.const(max(clients, 1)), line=101)
    if clients <= 1:
        b.call(client, [table, main.arg("ops"), b.const(0)], line=102)
    else:
        tids = []
        for i in range(clients):
            tids.append(b.spawn(
                client, [table, per_client, b.const(i * shard)],
                line=103 + i))
        for i, t in enumerate(tids):
            b.join(t, line=110 + i)
    b.ret(0, line=990)
    return mod
