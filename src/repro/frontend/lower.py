"""Lowering NVM-C ASTs to the NVM IR.

Clang -O0 style: every local lives in an ``alloca`` slot, reads load it,
writes store it — which is exactly the shape the DSA and trace collector
were built for. Persistence intrinsics map 1:1 onto IR primitives:

    pmalloc(struct T[, n])   -> palloc          vmalloc(...) -> malloc
    pmem_flush(p, n)         -> flush           pmem_fence() -> fence
    pmem_persist(p, n)       -> flush + fence
    tx_begin()/tx_end()      -> durable-transaction region markers
    tx_add(p, n)             -> txadd           epoch_begin()/epoch_end()
    strand_begin()/strand_end(), memset, memcpy, free, spawn(f, ...), join(t)

Every IR instruction carries the C source line, so checker warnings point
at the original program.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ParseError
from ..ir import types as ty
from ..ir.builder import IRBuilder
from ..ir.instructions import REGION_EPOCH, REGION_STRAND, REGION_TX
from ..ir.module import Module
from ..ir.values import Value
from . import cast as A

_CMP_OPS = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
            ">": "sgt", ">=": "sge"}
_ARITH_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem"}


class LoweringError(ParseError):
    pass


class Lowerer:
    def __init__(self, program: A.Program):
        self.program = program
        self.module = Module(
            program.source_file.rsplit("/", 1)[-1],
            persistency_model=program.model,
        )
        self._structs: Dict[str, ty.StructType] = {}

    # -- type mapping -------------------------------------------------------
    def map_type(self, ctype: A.CType, line: int = 0) -> ty.Type:
        if ctype.is_struct:
            base: ty.Type = self._struct(ctype.struct_name, line)
        elif ctype.base in ("int", "long"):
            base = ty.I64
        elif ctype.base == "char":
            base = ty.I8
        elif ctype.base == "void":
            base = ty.VOID
        else:  # pragma: no cover - parser restricts bases
            raise LoweringError(f"unknown type {ctype.base!r}", line)
        for _ in range(ctype.pointers):
            base = ty.pointer_to(base)
        if isinstance(base, ty.VoidType) and ctype.pointers:
            base = ty.PTR
        return base

    def _struct(self, name: str, line: int) -> ty.StructType:
        try:
            return self._structs[name]
        except KeyError:
            raise LoweringError(f"unknown struct {name!r}", line) from None

    # -- top level -------------------------------------------------------------
    def lower(self) -> Module:
        for sd in self.program.structs:
            fields = []
            for fname, ftype, length in sd.fields:
                mapped = self.map_type(ftype, sd.line)
                if length is not None:
                    mapped = ty.ArrayType(mapped, length)
                fields.append((fname, mapped))
            self._structs[sd.name] = self.module.define_struct(sd.name, fields)
        # two passes so forward calls resolve
        for fd in self.program.functions:
            params = [(n, self.map_type(t, fd.line)) for n, t in fd.params]
            self.module.define_function(
                fd.name, self.map_type(fd.ret, fd.line), params,
                source_file=self.program.source_file,
            )
        for fd in self.program.functions:
            _FunctionLowerer(self, fd).lower()
        return self.module


class _FunctionLowerer:
    def __init__(self, parent: Lowerer, fd: A.FuncDef):
        self.parent = parent
        self.module = parent.module
        self.fd = fd
        self.fn = self.module.function(fd.name)
        self.b = IRBuilder(self.fn, source_file=parent.program.source_file)
        #: name -> (slot pointer value, declared IR type)
        self.slots: Dict[str, tuple] = {}
        self._terminated = False

    # -- function body -----------------------------------------------------
    def lower(self) -> None:
        for arg in self.fn.args:
            slot = self.b.alloca(arg.type, line=self.fd.line)
            self.b.store(arg, slot, line=self.fd.line)
            self.slots[arg.name] = (slot, arg.type)
        self.lower_body(self.fd.body)
        if not self._terminated:
            if isinstance(self.fn.ret_type, ty.VoidType):
                self.b.ret(line=self.fd.line)
            else:
                self.b.ret(0, line=self.fd.line)

    def lower_body(self, stmts: List[A.Stmt]) -> None:
        for stmt in stmts:
            if self._terminated:
                return  # unreachable code after return: dropped
            self.lower_stmt(stmt)

    # -- statements -------------------------------------------------------------
    def lower_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.DeclStmt):
            declared = self.parent.map_type(stmt.ctype, stmt.line)
            slot = self.b.alloca(declared, line=stmt.line)
            self.slots[stmt.name] = (slot, declared)
            if stmt.init is not None:
                value = self.rvalue(stmt.init, expect=declared)
                self.b.store(self._coerce(value, declared, stmt.line),
                             slot, line=stmt.line)
            return
        if isinstance(stmt, A.AssignStmt):
            addr, vtype = self.lvalue(stmt.target)
            value = self.rvalue(stmt.value, expect=vtype)
            self.b.store(self._coerce(value, vtype, stmt.line),
                         addr, line=stmt.line)
            return
        if isinstance(stmt, A.ExprStmt):
            self.rvalue(stmt.expr, void_ok=True)
            return
        if isinstance(stmt, A.ReturnStmt):
            if stmt.value is None:
                self.b.ret(line=stmt.line)
            else:
                self.b.ret(self.rvalue(stmt.value, expect=self.fn.ret_type),
                           line=stmt.line)
            self._terminated = True
            return
        if isinstance(stmt, A.IfStmt):
            self._lower_if(stmt)
            return
        if isinstance(stmt, A.WhileStmt):
            self._lower_while(stmt)
            return
        raise LoweringError(f"cannot lower statement {stmt!r}", stmt.line)

    _block_counter = 0

    @classmethod
    def _label(cls, hint: str) -> str:
        cls._block_counter += 1
        return f"{hint}{cls._block_counter}"

    def _lower_if(self, stmt: A.IfStmt) -> None:
        then_bb = self.b.new_block(self._label("then"))
        else_bb = self.b.new_block(self._label("else")) if stmt.else_body \
            else None
        join_bb = self.b.new_block(self._label("join"))
        cond = self.condition(stmt.cond)
        # NB: not `else_bb or join_bb` — an empty BasicBlock is falsy
        false_bb = else_bb if else_bb is not None else join_bb
        self.b.br(cond, then_bb, false_bb, line=stmt.line)

        self.b.position_at(then_bb)
        self._terminated = False
        self.lower_body(stmt.then_body)
        if not self._terminated:
            self.b.jmp(join_bb, line=stmt.line)
        then_done = self._terminated

        else_done = False
        if else_bb is not None:
            self.b.position_at(else_bb)
            self._terminated = False
            self.lower_body(stmt.else_body)
            if not self._terminated:
                self.b.jmp(join_bb, line=stmt.line)
            else_done = self._terminated

        self.b.position_at(join_bb)
        self._terminated = then_done and (else_bb is not None) and else_done
        if self._terminated:
            # join unreachable but must be well-formed
            if isinstance(self.fn.ret_type, ty.VoidType):
                self.b.ret(line=stmt.line)
            else:
                self.b.ret(0, line=stmt.line)

    def _lower_while(self, stmt: A.WhileStmt) -> None:
        cond_bb = self.b.new_block(self._label("while.cond"))
        body_bb = self.b.new_block(self._label("while.body"))
        exit_bb = self.b.new_block(self._label("while.exit"))
        self.b.jmp(cond_bb, line=stmt.line)
        self.b.position_at(cond_bb)
        cond = self.condition(stmt.cond)
        self.b.br(cond, body_bb, exit_bb, line=stmt.line)
        self.b.position_at(body_bb)
        self._terminated = False
        self.lower_body(stmt.body)
        if not self._terminated:
            self.b.jmp(cond_bb, line=stmt.line)
        self.b.position_at(exit_bb)
        self._terminated = False

    # -- lvalues / rvalues --------------------------------------------------------
    def lvalue(self, expr: A.Expr):
        """Address of an assignable expression → (ptr value, value type)."""
        if isinstance(expr, A.Name):
            try:
                slot, vtype = self.slots[expr.ident]
            except KeyError:
                raise LoweringError(f"undeclared variable {expr.ident!r}",
                                    expr.line) from None
            return slot, vtype
        if isinstance(expr, A.Member):
            base = self.rvalue(expr.base)
            btype = self._value_type(base, expr.line)
            if not isinstance(btype, ty.PointerType) or \
                    not isinstance(btype.pointee, ty.StructType):
                raise LoweringError(
                    f"'->' on non-struct-pointer", expr.line)
            field_ptr = self.b.getfield(base, expr.field, line=expr.line)
            return field_ptr, btype.pointee.field_type(
                btype.pointee.field_index(expr.field))
        if isinstance(expr, A.Index):
            base = self.rvalue(expr.base)
            btype = self._value_type(base, expr.line)
            if not isinstance(btype, ty.PointerType) or btype.pointee is None:
                raise LoweringError("'[]' on non-pointer", expr.line)
            index = self.rvalue(expr.index)
            elem_ptr = self.b.getelem(base, index, line=expr.line)
            elem = btype.pointee
            if isinstance(elem, ty.ArrayType):
                elem = elem.elem
            return elem_ptr, elem
        raise LoweringError("expression is not assignable", expr.line)

    def _value_type(self, value: Value, line: int) -> ty.Type:
        return value.type

    def condition(self, expr: A.Expr) -> Value:
        v = self.rvalue(expr)
        if isinstance(v.type, ty.IntType) and v.type.bits == 1:
            return v
        return self.b.icmp("ne", v, 0, line=getattr(expr, "line", 0))

    def _coerce(self, v: Value, target: ty.Type, line: int) -> Value:
        """Width-adjust integer values to the storage type."""
        if isinstance(target, ty.IntType) and isinstance(v.type, ty.IntType) \
                and v.type.bits != target.bits:
            from ..ir.values import Constant

            if isinstance(v, Constant):
                return Constant(target, v.value)
            return self.b.cast(v, target, line=line)
        return v

    def _as_i64(self, v: Value, line: int) -> Value:
        if isinstance(v.type, ty.IntType) and v.type.bits != 64:
            return self.b.cast(v, ty.I64, line=line)
        return v

    def rvalue(self, expr: A.Expr, expect: Optional[ty.Type] = None,
               void_ok: bool = False) -> Value:
        if isinstance(expr, A.IntLit):
            bits = expect.bits if isinstance(expect, ty.IntType) else 64
            return self.b.const(expr.value, bits)
        if isinstance(expr, A.Name):
            slot, _vtype = self.lvalue(expr)
            return self.b.load(slot, line=expr.line)
        if isinstance(expr, (A.Member, A.Index)):
            addr, vtype = self.lvalue(expr)
            if vtype.is_aggregate():
                return addr  # arrays/structs decay to their address
            return self.b.load(addr, line=expr.line)
        if isinstance(expr, A.Unary):
            v = self.rvalue(expr.operand)
            if expr.op == "-":
                return self.b.sub(self.b.const(0, 64),
                                  self._as_i64(v, expr.line), line=expr.line)
            return self.b.icmp("eq", self._as_i64(v, expr.line), 0,
                               line=expr.line)
        if isinstance(expr, A.Binary):
            return self._binary(expr)
        if isinstance(expr, A.SizeofExpr):
            return self.b.const(
                self.parent.map_type(expr.target, expr.line).size())
        if isinstance(expr, A.CastExpr):
            target = self.parent.map_type(expr.target, expr.line)
            return self.b.cast(self.rvalue(expr.operand), target,
                               line=expr.line)
        if isinstance(expr, A.AllocExpr):
            elem = self.parent.map_type(expr.elem, expr.line)
            count = self.rvalue(expr.count) if expr.count is not None else 1
            if expr.persistent:
                return self.b.palloc(elem, count, line=expr.line)
            return self.b.malloc(elem, count, line=expr.line)
        if isinstance(expr, A.Call):
            return self._call(expr, void_ok)
        raise LoweringError(f"cannot lower expression {expr!r}", expr.line)

    def _binary(self, expr: A.Binary) -> Value:
        lhs = self.rvalue(expr.lhs)
        rhs = self.rvalue(expr.rhs)
        if expr.op in _CMP_OPS:
            if isinstance(lhs.type, ty.PointerType) or \
                    isinstance(rhs.type, ty.PointerType):
                l = lhs if isinstance(lhs.type, ty.PointerType) \
                    else self.b.cast(lhs, ty.PTR, line=expr.line)
                r = rhs if isinstance(rhs.type, ty.PointerType) \
                    else self.b.cast(rhs, ty.PTR, line=expr.line)
                return self.b.icmp(_CMP_OPS[expr.op],
                                   self.b.cast(l, ty.I64, line=expr.line),
                                   self.b.cast(r, ty.I64, line=expr.line),
                                   line=expr.line)
            return self.b.icmp(_CMP_OPS[expr.op],
                               self._as_i64(lhs, expr.line),
                               self._as_i64(rhs, expr.line), line=expr.line)
        if expr.op in ("&&", "||"):
            l = self.condition(expr.lhs) if not (
                isinstance(lhs.type, ty.IntType) and lhs.type.bits == 1
            ) else lhs
            r = self.condition(expr.rhs) if not (
                isinstance(rhs.type, ty.IntType) and rhs.type.bits == 1
            ) else rhs
            op = "and" if expr.op == "&&" else "or"
            return self.b.binop(op, l, r, line=expr.line)
        return self.b.binop(_ARITH_OPS[expr.op],
                            self._as_i64(lhs, expr.line),
                            self._as_i64(rhs, expr.line), line=expr.line)

    # -- calls & intrinsics -------------------------------------------------------
    def _call(self, expr: A.Call, void_ok: bool) -> Value:
        name = expr.callee
        line = expr.line
        b = self.b

        def arg(i: int) -> Value:
            return self.rvalue(expr.args[i])

        if name == "pmem_flush":
            return b.flush(arg(0), arg(1), line=line)
        if name == "pmem_fence":
            return b.fence(line=line)
        if name == "pmem_persist":
            b.flush(arg(0), arg(1), line=line)
            return b.fence(line=line)
        if name == "tx_begin":
            return b.txbegin(REGION_TX, line=line)
        if name == "tx_end":
            return b.txend(REGION_TX, line=line)
        if name == "tx_add":
            return b.txadd(arg(0), arg(1), line=line)
        if name == "epoch_begin":
            return b.txbegin(REGION_EPOCH, line=line)
        if name == "epoch_end":
            return b.txend(REGION_EPOCH, line=line)
        if name == "strand_begin":
            return b.txbegin(REGION_STRAND, line=line)
        if name == "strand_end":
            return b.txend(REGION_STRAND, line=line)
        if name == "memset":
            return b.memset(arg(0), arg(1), arg(2), line=line)
        if name == "memcpy":
            return b.memcpy(arg(0), arg(1), arg(2), line=line)
        if name == "free" or name == "pfree":
            return b.free(arg(0), line=line)
        if name == "spawn":
            target = expr.args[0]
            if not isinstance(target, A.Name):
                raise LoweringError("spawn's first argument must be a "
                                    "function name", line)
            args = [self.rvalue(a) for a in expr.args[1:]]
            return b.spawn(target.ident, args, line=line)
        if name == "join":
            return b.join(arg(0), line=line)

        args = [self.rvalue(a) for a in expr.args]
        target_fn = self.module.get_function(name)
        if target_fn is not None:
            return b.call(target_fn, args, line=line)
        from ..vm.builtins import is_builtin

        if is_builtin(name):
            ret = ty.I64 if name == "rand" else ty.VOID
            return b.call(name, args, ret_type=ret, line=line)
        raise LoweringError(f"call to undeclared function {name!r}", line)

    @property
    def parent(self) -> Lowerer:
        return self._parent

    @parent.setter
    def parent(self, value: Lowerer) -> None:
        self._parent = value
