"""AST for NVM-C.

A deliberately small, explicit tree: every node records its source line so
lowering can stamp IR instructions with real C coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# -- type expressions ---------------------------------------------------------

@dataclass(frozen=True)
class CType:
    """``base`` is 'int', 'long', 'char', 'void' or 'struct <name>';
    ``pointers`` counts trailing ``*``s."""

    base: str
    pointers: int = 0

    def pointer_to(self) -> "CType":
        return CType(self.base, self.pointers + 1)

    @property
    def is_struct(self) -> bool:
        return self.base.startswith("struct ")

    @property
    def struct_name(self) -> str:
        return self.base[len("struct "):]

    def __str__(self) -> str:
        return self.base + "*" * self.pointers


# -- expressions --------------------------------------------------------------

@dataclass
class Expr:
    line: int


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class Name(Expr):
    ident: str


@dataclass
class Unary(Expr):
    op: str          # '-', '!'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str          # + - * / % == != < <= > >= && ||
    lhs: Expr
    rhs: Expr


@dataclass
class Member(Expr):
    """``base->field`` (base must be a struct pointer)."""

    base: Expr
    field: str


@dataclass
class Index(Expr):
    """``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    callee: str
    args: List[Expr]


@dataclass
class AllocExpr(Expr):
    """``pmalloc(struct T [, count])`` / ``vmalloc(struct T [, count])`` /
    element-typed variants ``pmalloc(int, count)``."""

    persistent: bool
    elem: CType
    count: Optional[Expr]


@dataclass
class SizeofExpr(Expr):
    target: CType


@dataclass
class CastExpr(Expr):
    target: CType
    operand: Expr


# -- statements --------------------------------------------------------------

@dataclass
class Stmt:
    line: int


@dataclass
class DeclStmt(Stmt):
    ctype: CType
    name: str
    init: Optional[Expr]


@dataclass
class AssignStmt(Stmt):
    target: Expr     # Name | Member | Index
    value: Expr


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt]


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: List[Stmt]


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]


# -- top level ------------------------------------------------------------------

@dataclass
class StructDef:
    line: int
    name: str
    #: (field name, type, array length or None)
    fields: List[Tuple[str, CType, Optional[int]]]


@dataclass
class FuncDef:
    line: int
    name: str
    ret: CType
    params: List[Tuple[str, CType]]
    body: List[Stmt]


@dataclass
class Program:
    source_file: str
    model: str = "strict"
    structs: List[StructDef] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
