"""NVM-C front end: compile a C subset to the NVM IR.

The paper checks C programs (via LLVM); this front end provides the same
experience in miniature — write C-like NVM code with persistence
intrinsics and a ``#pragma persistency(...)`` model flag, and DeepMC's
warnings point at the original C lines.

Usage::

    from repro.frontend import compile_c
    module = compile_c(source_text, "program.c")
    report = check_module(module)
"""

from __future__ import annotations

from ..ir.module import Module
from ..ir.verifier import verify_module
from .cast import Program
from .cparser import parse_c
from .lexer import Token, tokenize
from .lower import Lowerer, LoweringError


def compile_c(source: str, source_file: str = "<nvmc>",
              verify: bool = True) -> Module:
    """Parse + lower NVM-C source into a verified IR module."""
    program = parse_c(source, source_file)
    module = Lowerer(program).lower()
    if verify:
        verify_module(module)
    return module


__all__ = [
    "LoweringError",
    "Lowerer",
    "Program",
    "Token",
    "compile_c",
    "parse_c",
    "tokenize",
]
