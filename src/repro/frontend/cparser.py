"""Recursive-descent parser for NVM-C.

Grammar (C subset)::

    program   := pragma* (structdef | funcdef)*
    pragma    := '#pragma persistency(strict|epoch|strand)'
    structdef := 'struct' IDENT '{' (type IDENT ('[' NUM ']')? ';')* '}' ';'
    funcdef   := type IDENT '(' params? ')' block
    type      := ('void'|'int'|'long'|'char'|'struct' IDENT) '*'*
    block     := '{' stmt* '}'
    stmt      := type IDENT ('=' expr)? ';'          -- declaration
               | lvalue '=' expr ';'                 -- assignment
               | expr ';'                            -- expression stmt
               | 'if' '(' expr ')' block ('else' block)?
               | 'while' '(' expr ')' block
               | 'return' expr? ';'
    expr      := C expression with ->, [], calls, sizeof, casts,
                 pmalloc/vmalloc allocation forms

Precedence (low→high): || ; && ; == != ; < <= > >= ; + - ; * / % ;
unary - ! ; postfix -> [] ().
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import ParseError
from .cast import (
    AllocExpr,
    AssignStmt,
    Binary,
    Call,
    CastExpr,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FuncDef,
    IfStmt,
    IntLit,
    Index,
    Member,
    Name,
    Program,
    ReturnStmt,
    SizeofExpr,
    StructDef,
    Stmt,
    Unary,
    WhileStmt,
)
from .lexer import Token, tokenize

_PRAGMA_RE = re.compile(
    r"#\s*pragma\s+persistency\s*\(\s*(strict|epoch|strand)\s*\)"
)

_ALLOC_FORMS = {"pmalloc": True, "vmalloc": False}

_TYPE_STARTERS = {"void", "int", "long", "char", "struct"}


class CParser:
    def __init__(self, source: str, source_file: str = "<nvmc>"):
        self.tokens = tokenize(source)
        self.pos = 0
        self.program = Program(source_file)
        self._struct_names: set = set()

    # -- token plumbing -----------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, got {tok.text!r}",
                             tok.line, tok.col)
        return tok

    def expect_ident(self) -> Token:
        tok = self.next()
        if tok.kind != "ident":
            raise ParseError(f"expected identifier, got {tok.text!r}",
                             tok.line, tok.col)
        return tok

    def accept(self, text: str) -> bool:
        if self.peek().text == text and self.peek().kind != "eof":
            self.pos += 1
            return True
        return False

    # -- entry -------------------------------------------------------------------
    def parse(self) -> Program:
        while self.peek().kind != "eof":
            tok = self.peek()
            if tok.kind == "pragma":
                self._parse_pragma(self.next())
            elif tok.text == "struct" and self.peek(2).text == "{":
                self._parse_struct()
            else:
                self._parse_function()
        return self.program

    def _parse_pragma(self, tok: Token) -> None:
        m = _PRAGMA_RE.match(tok.text)
        if m:
            self.program.model = m.group(1)
        # other pragmas are ignored, like a real compiler

    # -- types ---------------------------------------------------------------------
    def _at_type(self) -> bool:
        tok = self.peek()
        if tok.text in _TYPE_STARTERS:
            # 'struct' also begins struct *definitions*; here it is a type
            # usage when followed by IDENT and not '{'
            return True
        return False

    def _parse_type(self) -> CType:
        tok = self.next()
        if tok.text == "struct":
            name = self.expect_ident()
            base = f"struct {name.text}"
        elif tok.text in ("void", "int", "long", "char"):
            base = tok.text
        else:
            raise ParseError(f"expected a type, got {tok.text!r}",
                             tok.line, tok.col)
        ptrs = 0
        while self.accept("*"):
            ptrs += 1
        return CType(base, ptrs)

    # -- structs --------------------------------------------------------------------
    def _parse_struct(self) -> None:
        start = self.expect("struct")
        name = self.expect_ident()
        self.expect("{")
        fields: List[Tuple[str, CType, Optional[int]]] = []
        while not self.accept("}"):
            ftype = self._parse_type()
            fname = self.expect_ident()
            length: Optional[int] = None
            if self.accept("["):
                num = self.next()
                if num.kind != "number":
                    raise ParseError("array length must be a constant",
                                     num.line, num.col)
                length = int(num.text, 0)
                self.expect("]")
            self.expect(";")
            fields.append((fname.text, ftype, length))
        self.expect(";")
        self._struct_names.add(name.text)
        self.program.structs.append(StructDef(start.line, name.text, fields))

    # -- functions ---------------------------------------------------------------------
    def _parse_function(self) -> None:
        ret = self._parse_type()
        name = self.expect_ident()
        self.expect("(")
        params: List[Tuple[str, CType]] = []
        if not self.accept(")"):
            while True:
                if self.peek().text == "void" and self.peek(1).text == ")":
                    self.next()
                    self.expect(")")
                    break
                ptype = self._parse_type()
                pname = self.expect_ident()
                params.append((pname.text, ptype))
                if self.accept(")"):
                    break
                self.expect(",")
        body = self._parse_block()
        self.program.functions.append(
            FuncDef(name.line, name.text, ret, params, body)
        )

    # -- statements ----------------------------------------------------------------------
    def _parse_block(self) -> List[Stmt]:
        self.expect("{")
        stmts: List[Stmt] = []
        while not self.accept("}"):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> Stmt:
        tok = self.peek()
        if tok.text == "if":
            return self._parse_if()
        if tok.text == "while":
            return self._parse_while()
        if tok.text == "return":
            self.next()
            value = None
            if self.peek().text != ";":
                value = self._parse_expr()
            self.expect(";")
            return ReturnStmt(tok.line, value)
        if self._at_type():
            ctype = self._parse_type()
            name = self.expect_ident()
            init = None
            if self.accept("="):
                init = self._parse_expr()
            self.expect(";")
            return DeclStmt(tok.line, ctype, name.text, init)
        # assignment or expression statement
        expr = self._parse_expr()
        if self.accept("="):
            if not isinstance(expr, (Name, Member, Index)):
                raise ParseError("invalid assignment target",
                                 tok.line, tok.col)
            value = self._parse_expr()
            self.expect(";")
            return AssignStmt(tok.line, expr, value)
        self.expect(";")
        return ExprStmt(tok.line, expr)

    def _parse_if(self) -> IfStmt:
        tok = self.expect("if")
        self.expect("(")
        cond = self._parse_expr()
        self.expect(")")
        then_body = self._parse_block()
        else_body: List[Stmt] = []
        if self.accept("else"):
            if self.peek().text == "if":
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return IfStmt(tok.line, cond, then_body, else_body)

    def _parse_while(self) -> WhileStmt:
        tok = self.expect("while")
        self.expect("(")
        cond = self._parse_expr()
        self.expect(")")
        body = self._parse_block()
        return WhileStmt(tok.line, cond, body)

    # -- expressions (precedence climbing) --------------------------------------------------
    _LEVELS = [
        ["||"],
        ["&&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_expr(self, level: int = 0) -> Expr:
        if level == len(self._LEVELS):
            return self._parse_unary()
        lhs = self._parse_expr(level + 1)
        while self.peek().text in self._LEVELS[level] \
                and self.peek().kind == "op":
            op = self.next()
            rhs = self._parse_expr(level + 1)
            lhs = Binary(op.line, op.text, lhs, rhs)
        return lhs

    def _parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.text in ("-", "!") and tok.kind == "op":
            self.next()
            return Unary(tok.line, tok.text, self._parse_unary())
        # cast: '(' type ')' expr — only when the parenthesized thing is a type
        if tok.text == "(" and self.peek(1).text in _TYPE_STARTERS:
            self.next()
            target = self._parse_type()
            self.expect(")")
            return CastExpr(tok.line, target, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            tok = self.peek()
            if tok.text == "->":
                self.next()
                field = self.expect_ident()
                expr = Member(tok.line, expr, field.text)
            elif tok.text == "[":
                self.next()
                index = self._parse_expr()
                self.expect("]")
                expr = Index(tok.line, expr, index)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "number":
            return IntLit(tok.line, int(tok.text, 0))
        if tok.text == "(":
            inner = self._parse_expr()
            self.expect(")")
            return inner
        if tok.text == "sizeof":
            self.expect("(")
            target = self._parse_type()
            self.expect(")")
            return SizeofExpr(tok.line, target)
        if tok.kind == "ident":
            if tok.text in _ALLOC_FORMS and self.peek().text == "(":
                return self._parse_alloc(tok)
            if self.peek().text == "(":
                return self._parse_call(tok)
            return Name(tok.line, tok.text)
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)

    def _parse_alloc(self, tok: Token) -> AllocExpr:
        persistent = _ALLOC_FORMS[tok.text]
        self.expect("(")
        elem = self._parse_type()
        count: Optional[Expr] = None
        if self.accept(","):
            count = self._parse_expr()
        self.expect(")")
        return AllocExpr(tok.line, persistent, elem, count)

    def _parse_call(self, tok: Token) -> Call:
        self.expect("(")
        args: List[Expr] = []
        if not self.accept(")"):
            while True:
                args.append(self._parse_expr())
                if self.accept(")"):
                    break
                self.expect(",")
        return Call(tok.line, tok.text, args)


def parse_c(source: str, source_file: str = "<nvmc>") -> Program:
    """Parse NVM-C source into a :class:`Program`."""
    return CParser(source, source_file).parse()
