"""Lexer for NVM-C, the C subset the front end accepts.

Tokens carry line/column for diagnostics and for the IR source locations —
warnings produced on compiled C code point at the original C lines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ParseError

KEYWORDS = {
    "struct", "if", "else", "while", "for", "return", "void",
    "int", "long", "char", "sizeof",
}

#: multi-character operators, longest first
_OPERATORS = [
    "->", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>[ \t\r]+)
    | (?P<newline>\n)
    | (?P<line_comment>//[^\n]*)
    | (?P<block_comment>/\*.*?\*/)
    | (?P<pragma>\#[^\n]*)
    | (?P<number>0[xX][0-9a-fA-F]+|\d+)
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<op>""" + "|".join(re.escape(o) for o in _OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str   # 'keyword' | 'ident' | 'number' | 'op' | 'pragma' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"<{self.kind} {self.text!r} @{self.line}:{self.col}>"


def tokenize(source: str) -> List[Token]:
    """Tokenize NVM-C source; raises ParseError on illegal characters."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            col = pos - line_start + 1
            raise ParseError(
                f"illegal character {source[pos]!r}", line, col
            )
        kind = m.lastgroup
        text = m.group()
        col = pos - line_start + 1
        if kind == "newline":
            line += 1
            line_start = m.end()
        elif kind == "block_comment":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = m.start() + text.rindex("\n") + 1
        elif kind in ("ws", "line_comment"):
            pass
        elif kind == "pragma":
            tokens.append(Token("pragma", text, line, col))
        elif kind == "number":
            tokens.append(Token("number", text, line, col))
        elif kind == "ident":
            k = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(k, text, line, col))
        else:  # op
            tokens.append(Token("op", text, line, col))
        pos = m.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
