"""Instruction set of the NVM IR.

The instruction set is deliberately close to what DeepMC consumes from
LLVM IR: ordinary loads/stores, pointer arithmetic (split into explicit
``getfield``/``getelem`` for field-sensitivity), calls, branches — plus the
persistence primitives the paper's rules are written over:

* ``palloc``  — allocate from persistent memory (malloc-like, tracked by DSA)
* ``flush``   — write a byte range back to NVM (``clwb``-like, asynchronous)
* ``fence``   — persist barrier (``sfence``-like, drains pending flushes)
* ``txbegin``/``txend`` — region markers for durable transactions, epochs,
  and strands (the annotations NVM programs already carry, §4.4)
* ``txadd``   — undo-log an object into the enclosing transaction

Threads exist so the dynamic checker has real concurrency to race-detect:
``spawn``/``join`` create and join interpreter threads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import IRError
from . import types as ty
from .sourceloc import UNKNOWN_LOC, SourceLoc
from .values import Constant, Value

# Region kinds for txbegin/txend.
REGION_TX = "tx"          # durable transaction (PMDK TX_BEGIN, nvm_txbegin)
REGION_EPOCH = "epoch"    # epoch boundary region (PMFS/Mnemosyne)
REGION_STRAND = "strand"  # strand region (strand persistency)

REGION_KINDS = (REGION_TX, REGION_EPOCH, REGION_STRAND)

BINARY_OPS = ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "lshr")
ICMP_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge")


class Instruction(Value):
    """Base class: an instruction is also a value (its result)."""

    opcode = "?"

    def __init__(
        self,
        type_: ty.Type,
        operands: Sequence[Value] = (),
        name: str = "",
        loc: Optional[SourceLoc] = None,
    ):
        super().__init__(type_, name)
        self.operands: List[Value] = list(operands)
        self.loc: SourceLoc = loc if loc is not None else UNKNOWN_LOC
        self.parent = None  # set by BasicBlock.append

    # -- classification helpers used throughout analyses ----------------
    def has_result(self) -> bool:
        return not isinstance(self.type, ty.VoidType)

    def is_terminator(self) -> bool:
        return isinstance(self, (Br, Jmp, Ret))

    def successors_labels(self) -> List[str]:
        return []

    # -- printing --------------------------------------------------------
    def _operand_str(self) -> str:
        return ", ".join(op.ref() for op in self.operands)

    def format(self) -> str:
        head = f"%{self.name} = " if self.has_result() and self.name else ""
        return f"{head}{self.opcode} {self._operand_str()}".rstrip()

    def format_with_loc(self) -> str:
        text = self.format()
        if self.loc is not UNKNOWN_LOC:
            text += f'  !loc "{self.loc.file}":{self.loc.line}'
        return text

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.format()}>"


# ---------------------------------------------------------------------------
# Memory allocation
# ---------------------------------------------------------------------------

class Alloca(Instruction):
    """Stack allocation of a single ``alloc_type`` (always volatile)."""

    opcode = "alloca"

    def __init__(self, alloc_type: ty.Type, name: str = "", loc=None):
        super().__init__(ty.pointer_to(alloc_type), (), name, loc)
        self.alloc_type = alloc_type

    def format(self) -> str:
        return f"%{self.name} = alloca {self.alloc_type}"


class Malloc(Instruction):
    """Volatile heap allocation of ``count`` elements of ``alloc_type``."""

    opcode = "malloc"

    def __init__(self, alloc_type: ty.Type, count: Value, name: str = "", loc=None):
        super().__init__(ty.pointer_to(alloc_type), (count,), name, loc)
        self.alloc_type = alloc_type

    @property
    def count(self) -> Value:
        return self.operands[0]

    def format(self) -> str:
        return f"%{self.name} = malloc {self.alloc_type}, {self.count.ref()}"


class PAlloc(Instruction):
    """Persistent-heap allocation — the malloc-like functions DSA tracks."""

    opcode = "palloc"

    def __init__(self, alloc_type: ty.Type, count: Value, name: str = "", loc=None):
        super().__init__(ty.pointer_to(alloc_type), (count,), name, loc)
        self.alloc_type = alloc_type

    @property
    def count(self) -> Value:
        return self.operands[0]

    def format(self) -> str:
        return f"%{self.name} = palloc {self.alloc_type}, {self.count.ref()}"


class Free(Instruction):
    """Release a heap allocation (volatile or persistent)."""

    opcode = "free"

    def __init__(self, ptr: Value, loc=None):
        super().__init__(ty.VOID, (ptr,), "", loc)

    @property
    def ptr(self) -> Value:
        return self.operands[0]


# ---------------------------------------------------------------------------
# Memory access and addressing
# ---------------------------------------------------------------------------

class Load(Instruction):
    """``%v = load T, %ptr``."""

    opcode = "load"

    def __init__(self, value_type: ty.Type, ptr: Value, name: str = "", loc=None):
        super().__init__(value_type, (ptr,), name, loc)

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    def format(self) -> str:
        return f"%{self.name} = load {self.type}, {self.ptr.ref()}"


class Store(Instruction):
    """``store T %val, %ptr``."""

    opcode = "store"

    def __init__(self, value: Value, ptr: Value, loc=None):
        super().__init__(ty.VOID, (value, ptr), "", loc)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def ptr(self) -> Value:
        return self.operands[1]

    def format(self) -> str:
        return f"store {self.value.type} {self.value.ref()}, {self.ptr.ref()}"


class GetField(Instruction):
    """``%f = getfield %ptr, idx`` — address of struct field ``idx``.

    Keeping field selection explicit (instead of a multi-index GEP) is what
    gives every analysis field-sensitivity for free.
    """

    opcode = "getfield"

    def __init__(self, ptr: Value, index: int, name: str = "", loc=None):
        base = ptr.type
        if not isinstance(base, ty.PointerType) or not isinstance(base.pointee, ty.StructType):
            raise IRError(f"getfield requires a pointer-to-struct operand, got {base}")
        struct = base.pointee
        ftype = struct.field_type(index)
        super().__init__(ty.pointer_to(ftype), (ptr,), name, loc)
        self.index = index
        self.struct = struct

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    def field_name(self) -> str:
        return self.struct.field_name(self.index)

    def format(self) -> str:
        return f"%{self.name} = getfield {self.ptr.ref()}, {self.index}"


class GetElem(Instruction):
    """``%e = getelem %ptr, %i`` — address of element ``i``.

    Works on pointer-to-array (indexes into the array) and on plain typed
    pointers (pointer arithmetic in element units).
    """

    opcode = "getelem"

    def __init__(self, ptr: Value, index: Value, name: str = "", loc=None):
        base = ptr.type
        if not isinstance(base, ty.PointerType) or base.pointee is None:
            raise IRError(f"getelem requires a typed pointer operand, got {base}")
        if isinstance(base.pointee, ty.ArrayType):
            elem = base.pointee.elem
        else:
            elem = base.pointee
        super().__init__(ty.pointer_to(elem), (ptr, index), name, loc)

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    def format(self) -> str:
        return f"%{self.name} = getelem {self.ptr.ref()}, {self.index.ref()}"


class Memcpy(Instruction):
    """``memcpy %dst, %src, %size`` (byte count)."""

    opcode = "memcpy"

    def __init__(self, dst: Value, src: Value, size: Value, loc=None):
        super().__init__(ty.VOID, (dst, src, size), "", loc)

    @property
    def dst(self) -> Value:
        return self.operands[0]

    @property
    def src(self) -> Value:
        return self.operands[1]

    @property
    def size(self) -> Value:
        return self.operands[2]


class Memset(Instruction):
    """``memset %dst, byte, %size``."""

    opcode = "memset"

    def __init__(self, dst: Value, byte: Value, size: Value, loc=None):
        super().__init__(ty.VOID, (dst, byte, size), "", loc)

    @property
    def dst(self) -> Value:
        return self.operands[0]

    @property
    def byte(self) -> Value:
        return self.operands[1]

    @property
    def size(self) -> Value:
        return self.operands[2]


# ---------------------------------------------------------------------------
# Persistence primitives
# ---------------------------------------------------------------------------

class Flush(Instruction):
    """``flush %ptr, %size`` — initiate write-back of [ptr, ptr+size).

    Asynchronous like ``clwb``: durability is only guaranteed once a
    subsequent ``fence`` completes.
    """

    opcode = "flush"

    def __init__(self, ptr: Value, size: Value, loc=None):
        super().__init__(ty.VOID, (ptr, size), "", loc)

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def size(self) -> Value:
        return self.operands[1]


class Fence(Instruction):
    """``fence`` — persist barrier; all earlier flushes complete before it."""

    opcode = "fence"

    def __init__(self, loc=None):
        super().__init__(ty.VOID, (), "", loc)

    def format(self) -> str:
        return "fence"


class TxBegin(Instruction):
    """``txbegin kind`` — enter a durable-tx / epoch / strand region."""

    opcode = "txbegin"

    def __init__(self, kind: str, label: str = "", loc=None):
        if kind not in REGION_KINDS:
            raise IRError(f"unknown region kind {kind!r}")
        super().__init__(ty.VOID, (), "", loc)
        self.kind = kind
        self.label = label

    def format(self) -> str:
        if self.label:
            return f'txbegin {self.kind} "{self.label}"'
        return f"txbegin {self.kind}"


class TxEnd(Instruction):
    """``txend kind`` — leave the innermost region of ``kind``."""

    opcode = "txend"

    def __init__(self, kind: str, loc=None):
        if kind not in REGION_KINDS:
            raise IRError(f"unknown region kind {kind!r}")
        super().__init__(ty.VOID, (), "", loc)
        self.kind = kind

    def format(self) -> str:
        return f"txend {self.kind}"


class TxAdd(Instruction):
    """``txadd %ptr, %size`` — undo-log an object range into the current tx.

    Mirrors PMDK's ``TX_ADD``: the logged range is flushed (and made
    recoverable) when the transaction commits.
    """

    opcode = "txadd"

    def __init__(self, ptr: Value, size: Value, loc=None):
        super().__init__(ty.VOID, (ptr, size), "", loc)

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def size(self) -> Value:
        return self.operands[1]


# ---------------------------------------------------------------------------
# Calls and control flow
# ---------------------------------------------------------------------------

class Call(Instruction):
    """``%r = call T @callee(args...)``; callee is resolved by name."""

    opcode = "call"

    def __init__(self, ret_type: ty.Type, callee: str, args: Sequence[Value],
                 name: str = "", loc=None):
        super().__init__(ret_type, args, name, loc)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return self.operands

    def format(self) -> str:
        head = f"%{self.name} = " if self.has_result() and self.name else ""
        return f"{head}call {self.type} @{self.callee}({self._operand_str()})"


class Spawn(Instruction):
    """``%t = spawn @fn(args...)`` — start a new interpreter thread."""

    opcode = "spawn"

    def __init__(self, callee: str, args: Sequence[Value], name: str = "", loc=None):
        super().__init__(ty.I64, args, name, loc)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return self.operands

    def format(self) -> str:
        return f"%{self.name} = spawn @{self.callee}({self._operand_str()})"


class Join(Instruction):
    """``join %t`` — wait for a spawned thread to finish."""

    opcode = "join"

    def __init__(self, thread: Value, loc=None):
        super().__init__(ty.VOID, (thread,), "", loc)

    @property
    def thread(self) -> Value:
        return self.operands[0]


class Br(Instruction):
    """``br %cond, label %then, label %else``."""

    opcode = "br"

    def __init__(self, cond: Value, then_label: str, else_label: str, loc=None):
        super().__init__(ty.VOID, (cond,), "", loc)
        self.then_label = then_label
        self.else_label = else_label

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def successors_labels(self) -> List[str]:
        return [self.then_label, self.else_label]

    def format(self) -> str:
        return f"br {self.cond.ref()}, label %{self.then_label}, label %{self.else_label}"


class Jmp(Instruction):
    """``jmp label %target``."""

    opcode = "jmp"

    def __init__(self, target: str, loc=None):
        super().__init__(ty.VOID, (), "", loc)
        self.target = target

    def successors_labels(self) -> List[str]:
        return [self.target]

    def format(self) -> str:
        return f"jmp label %{self.target}"


class Ret(Instruction):
    """``ret %v`` or ``ret void``."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None, loc=None):
        super().__init__(ty.VOID, (value,) if value is not None else (), "", loc)

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def format(self) -> str:
        if self.value is None:
            return "ret void"
        return f"ret {self.value.type} {self.value.ref()}"


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------

class BinOp(Instruction):
    """``%x = add i64 %a, %b`` and friends (see :data:`BINARY_OPS`)."""

    opcode = "binop"

    def __init__(self, op: str, a: Value, b: Value, name: str = "", loc=None):
        if op not in BINARY_OPS:
            raise IRError(f"unknown binary op {op!r}")
        if a.type != b.type:
            raise IRError(f"binop operand types differ: {a.type} vs {b.type}")
        super().__init__(a.type, (a, b), name, loc)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def format(self) -> str:
        return (
            f"%{self.name} = {self.op} {self.type} "
            f"{self.lhs.ref()}, {self.rhs.ref()}"
        )


class ICmp(Instruction):
    """``%c = icmp slt i64 %a, %b`` → i1."""

    opcode = "icmp"

    def __init__(self, pred: str, a: Value, b: Value, name: str = "", loc=None):
        if pred not in ICMP_PREDS:
            raise IRError(f"unknown icmp predicate {pred!r}")
        super().__init__(ty.I1, (a, b), name, loc)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def format(self) -> str:
        return (
            f"%{self.name} = icmp {self.pred} {self.lhs.type} "
            f"{self.lhs.ref()}, {self.rhs.ref()}"
        )


class Cast(Instruction):
    """``%y = cast %x to T`` — int↔int width changes and pointer casts."""

    opcode = "cast"

    def __init__(self, value: Value, to_type: ty.Type, name: str = "", loc=None):
        super().__init__(to_type, (value,), name, loc)

    @property
    def value(self) -> Value:
        return self.operands[0]

    def format(self) -> str:
        return f"%{self.name} = cast {self.value.ref()} to {self.type}"
