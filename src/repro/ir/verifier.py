"""Module verifier: structural well-formedness checks.

Run after construction or parsing; the static checker assumes a verified
module. Verification corresponds to the "baseline compile" in Table 9 —
what a compiler does before DeepMC's extra analysis passes run.
"""

from __future__ import annotations

from typing import List, Set

from ..errors import VerifierError
from . import instructions as ins
from . import types as ty
from .function import Function
from .module import Module
from .values import Argument, Constant, Value


def verify_module(mod: Module) -> None:
    """Raise :class:`VerifierError` on the first structural problem found."""
    for fn in mod.functions():
        verify_function(fn, mod)


def verify_function(fn: Function, mod: Module) -> None:
    if fn.is_declaration():
        return
    _check_blocks_terminated(fn)
    _check_labels_resolve(fn)
    _check_defs_dominate_uses_linearly(fn)
    _check_returns(fn)
    _check_calls_resolve(fn, mod)
    _check_region_balance(fn)


def _check_blocks_terminated(fn: Function) -> None:
    for block in fn.blocks:
        if not block.instructions:
            raise VerifierError(f"@{fn.name}: empty block %{block.label}")
        if not block.is_terminated():
            raise VerifierError(
                f"@{fn.name}: block %{block.label} lacks a terminator"
            )
        for inst in block.instructions[:-1]:
            if inst.is_terminator():
                raise VerifierError(
                    f"@{fn.name}: terminator mid-block in %{block.label}: "
                    f"{inst.format()}"
                )


def _check_labels_resolve(fn: Function) -> None:
    for block in fn.blocks:
        for label in block.successors_labels():
            if not fn.has_block(label):
                raise VerifierError(
                    f"@{fn.name}: branch to unknown block %{label} "
                    f"from %{block.label}"
                )


def _check_defs_dominate_uses_linearly(fn: Function) -> None:
    """Cheap SSA-ish check: every used value was defined earlier in layout
    order, is an argument, or is a constant.

    Layout order is an over-approximation of dominance for the structured
    control flow the builder emits; it catches the construction mistakes
    that matter (using a value before creating it).
    """
    defined: Set[int] = set()
    args = {id(a) for a in fn.args}
    order_seen: Set[int] = set()
    for block in fn.blocks:
        for inst in block.instructions:
            for op in inst.operands:
                if op is None or isinstance(op, Constant):
                    continue
                if id(op) in args:
                    continue
                if isinstance(op, ins.Instruction):
                    if id(op) not in order_seen:
                        raise VerifierError(
                            f"@{fn.name}: {inst.format()} uses "
                            f"%{op.name} before its definition"
                        )
                    continue
                if isinstance(op, Argument):
                    raise VerifierError(
                        f"@{fn.name}: {inst.format()} uses foreign argument "
                        f"%{op.name}"
                    )
                raise VerifierError(
                    f"@{fn.name}: {inst.format()} has unsupported operand {op!r}"
                )
            if inst.has_result():
                order_seen.add(id(inst))
            _ = defined


def _check_returns(fn: Function) -> None:
    wants_value = not isinstance(fn.ret_type, ty.VoidType)
    for block in fn.blocks:
        term = block.terminator()
        if isinstance(term, ins.Ret):
            if wants_value and term.value is None:
                raise VerifierError(
                    f"@{fn.name}: ret void in function returning {fn.ret_type}"
                )
            if not wants_value and term.value is not None:
                raise VerifierError(
                    f"@{fn.name}: ret with value in void function"
                )


def _check_calls_resolve(fn: Function, mod: Module) -> None:
    """Calls must target a module function, an annotation, or a builtin."""
    from ..vm.builtins import is_builtin

    for inst in fn.instructions():
        if isinstance(inst, (ins.Call, ins.Spawn)):
            name = inst.callee
            if name.startswith("__deepmc_"):
                continue  # runtime hooks inserted by the instrumenter
            if mod.has_function(name):
                continue
            if mod.annotations.is_annotated(name):
                continue
            if is_builtin(name):
                continue
            raise VerifierError(
                f"@{fn.name}: call to unknown function @{name}"
            )


def _check_region_balance(fn: Function) -> None:
    """txbegin/txend of each kind must be balanced on every linear block
    walk. Full path-sensitivity is the checker's job; the verifier only
    rejects a function whose *total* begins/ends of a kind differ, which
    catches the common construction bug without forbidding regions spanning
    blocks.
    """
    counts = {}
    for inst in fn.instructions():
        if isinstance(inst, ins.TxBegin):
            counts[inst.kind] = counts.get(inst.kind, 0) + 1
        elif isinstance(inst, ins.TxEnd):
            counts[inst.kind] = counts.get(inst.kind, 0) - 1
    for kind, n in counts.items():
        if n != 0:
            raise VerifierError(
                f"@{fn.name}: unbalanced {kind} regions (delta {n})"
            )
