"""Source locations attached to IR instructions.

DeepMC's warning reports are keyed by ``file:line`` (Tables 3 and 8 in the
paper list every bug that way), so every instruction can carry a
:class:`SourceLoc`. Corpus programs set these to the coordinates the paper
records for the original C code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, order=True)
class SourceLoc:
    """An immutable (file, line, column) source coordinate."""

    file: str
    line: int
    col: int = 0

    def __str__(self) -> str:
        if self.col:
            return f"{self.file}:{self.line}:{self.col}"
        return f"{self.file}:{self.line}"

    def with_line(self, line: int) -> "SourceLoc":
        """Return a copy pointing at a different line of the same file."""
        return SourceLoc(self.file, line, self.col)


#: Placeholder for IR constructed without source information.
UNKNOWN_LOC = SourceLoc("<unknown>", 0)


def loc_or_unknown(loc: Optional[SourceLoc]) -> SourceLoc:
    """Normalize an optional location to a concrete one."""
    return loc if loc is not None else UNKNOWN_LOC
