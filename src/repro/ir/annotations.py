"""Persist-effect annotations for framework functions.

DeepMC "uses an interface to track every function that performs persistent
operations" (§4.1): the user declares, in a handful of lines, which
framework entry points write, flush, fence, allocate, log, or delimit
transactions. This module is that interface.

An annotation is a list of :class:`Effect` records describing what a call
does in terms of the IR's persistence primitives. The trace collector
expands an annotated call into the corresponding abstract events *instead
of* inlining its body, exactly as the paper resolves ``nvm_persist1`` to
"flush + fence" without another DSG node (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import IRError

# Effect kinds, in the vocabulary of the checking rules.
EFFECT_WRITE = "write"        # stores through ptr_arg (size_arg bytes)
EFFECT_FLUSH = "flush"        # initiates write-back of ptr_arg
EFFECT_FENCE = "fence"        # persist barrier
EFFECT_ALLOC = "alloc"        # returns a fresh persistent object
EFFECT_LOG = "log"            # undo-logs ptr_arg into the enclosing tx
EFFECT_TX_BEGIN = "tx_begin"  # opens a region (region_kind)
EFFECT_TX_END = "tx_end"      # closes a region (region_kind)

EFFECT_KINDS = (
    EFFECT_WRITE,
    EFFECT_FLUSH,
    EFFECT_FENCE,
    EFFECT_ALLOC,
    EFFECT_LOG,
    EFFECT_TX_BEGIN,
    EFFECT_TX_END,
)


@dataclass(frozen=True)
class Effect:
    """One abstract persistence effect of an annotated function.

    ``ptr_arg``/``size_arg`` are argument indices into the call; a
    ``size_arg`` of ``-1`` means "the whole object the pointer refers to".
    """

    kind: str
    ptr_arg: int = -1
    size_arg: int = -1
    region_kind: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EFFECT_KINDS:
            raise IRError(f"unknown effect kind {self.kind!r}")
        if self.kind in (EFFECT_WRITE, EFFECT_FLUSH, EFFECT_LOG) and self.ptr_arg < 0:
            raise IRError(f"effect {self.kind!r} requires a ptr_arg")
        if self.kind in (EFFECT_TX_BEGIN, EFFECT_TX_END) and not self.region_kind:
            raise IRError(f"effect {self.kind!r} requires a region_kind")


@dataclass
class PersistAnnotation:
    """The declared persistence behaviour of one function."""

    function: str
    effects: List[Effect] = field(default_factory=list)
    #: Human-readable origin, e.g. "pmdk" — used in reports.
    framework: str = ""

    def has_effect(self, kind: str) -> bool:
        return any(e.kind == kind for e in self.effects)


class AnnotationRegistry:
    """Per-module table of persist annotations, keyed by function name."""

    def __init__(self) -> None:
        self._by_name: Dict[str, PersistAnnotation] = {}

    def register(self, annotation: PersistAnnotation) -> PersistAnnotation:
        if annotation.function in self._by_name:
            raise IRError(
                f"annotation for @{annotation.function} already registered"
            )
        self._by_name[annotation.function] = annotation
        return annotation

    def annotate(
        self,
        function: str,
        effects: Sequence[Effect],
        framework: str = "",
    ) -> PersistAnnotation:
        """Shorthand: build and register an annotation."""
        return self.register(PersistAnnotation(function, list(effects), framework))

    def lookup(self, function: str) -> Optional[PersistAnnotation]:
        return self._by_name.get(function)

    def is_annotated(self, function: str) -> bool:
        return function in self._by_name

    def functions(self) -> List[str]:
        return sorted(self._by_name)

    def merge_from(self, other: "AnnotationRegistry") -> None:
        """Import all annotations from ``other`` (duplicates are errors)."""
        for name in other.functions():
            self.register(other.lookup(name))  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self._by_name)
