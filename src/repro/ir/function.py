"""Functions: named, typed, made of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import IRError
from . import types as ty
from .basicblock import BasicBlock
from .instructions import Instruction
from .values import Argument


class Function:
    """A function definition (with blocks) or declaration (without).

    ``source_file`` records which original C file the function models —
    warning reports group by it, matching the paper's per-file bug tables.
    """

    def __init__(
        self,
        name: str,
        ret_type: ty.Type,
        params: Sequence[Tuple[str, ty.Type]] = (),
        source_file: str = "",
    ):
        self.name = name
        self.ret_type = ret_type
        self.args: List[Argument] = [
            Argument(t, n, i) for i, (n, t) in enumerate(params)
        ]
        self.blocks: List[BasicBlock] = []
        self._blocks_by_label: Dict[str, BasicBlock] = {}
        self.source_file = source_file
        self.parent = None  # set by Module.add_function

    # -- structure -------------------------------------------------------
    @property
    def type(self) -> ty.FunctionType:
        return ty.FunctionType(self.ret_type, [a.type for a in self.args])

    def is_declaration(self) -> bool:
        return not self.blocks

    def add_block(self, label: str) -> BasicBlock:
        if label in self._blocks_by_label:
            raise IRError(f"duplicate block label %{label} in @{self.name}")
        block = BasicBlock(label)
        block.parent = self
        self.blocks.append(block)
        self._blocks_by_label[label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        try:
            return self._blocks_by_label[label]
        except KeyError:
            raise IRError(f"no block %{label} in @{self.name}") from None

    def has_block(self, label: str) -> bool:
        return label in self._blocks_by_label

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"@{self.name} is a declaration; it has no entry block")
        return self.blocks[0]

    def arg(self, name: str) -> Argument:
        for a in self.args:
            if a.name == name:
                return a
        raise IRError(f"@{self.name} has no argument %{name}")

    # -- iteration helpers -------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def find_instructions(self, opcode: str) -> List[Instruction]:
        return [i for i in self.instructions() if i.opcode == opcode]

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration() else "define"
        return f"<Function {kind} @{self.name}>"
