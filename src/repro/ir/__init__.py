"""NVM intermediate representation.

An LLVM-flavoured typed IR with explicit persistence primitives (``palloc``,
``flush``, ``fence``, ``txbegin``/``txend``/``txadd``) plus a builder API,
textual parser/printer, verifier, and the persist-annotation registry that
tells DeepMC which framework functions perform persistent operations.
"""

from . import instructions, types
from .annotations import (
    EFFECT_ALLOC,
    EFFECT_FENCE,
    EFFECT_FLUSH,
    EFFECT_LOG,
    EFFECT_TX_BEGIN,
    EFFECT_TX_END,
    EFFECT_WRITE,
    AnnotationRegistry,
    Effect,
    PersistAnnotation,
)
from .basicblock import BasicBlock
from .builder import IRBuilder
from .function import Function
from .instructions import (
    REGION_EPOCH,
    REGION_STRAND,
    REGION_TX,
    Instruction,
)
from .module import PERSISTENCY_FLAGS, Module
from .parser import parse_module
from .printer import print_function, print_module
from .sourceloc import UNKNOWN_LOC, SourceLoc
from .values import (
    Argument,
    Constant,
    GlobalRef,
    Value,
    const_bool,
    const_float,
    const_int,
    null_ptr,
    undef,
)
from .verifier import verify_function, verify_module

__all__ = [
    "AnnotationRegistry",
    "Argument",
    "BasicBlock",
    "Constant",
    "Effect",
    "EFFECT_ALLOC",
    "EFFECT_FENCE",
    "EFFECT_FLUSH",
    "EFFECT_LOG",
    "EFFECT_TX_BEGIN",
    "EFFECT_TX_END",
    "EFFECT_WRITE",
    "Function",
    "GlobalRef",
    "IRBuilder",
    "Instruction",
    "Module",
    "PERSISTENCY_FLAGS",
    "PersistAnnotation",
    "REGION_EPOCH",
    "REGION_STRAND",
    "REGION_TX",
    "SourceLoc",
    "UNKNOWN_LOC",
    "Value",
    "const_bool",
    "const_float",
    "const_int",
    "instructions",
    "null_ptr",
    "parse_module",
    "print_function",
    "print_module",
    "types",
    "undef",
    "verify_function",
    "verify_module",
]
