"""Textual serialization of NVM IR modules.

The output round-trips through :mod:`repro.ir.parser`. The format is
LLVM-flavoured; see the package docs and the parser's grammar comment.
"""

from __future__ import annotations

from typing import List

from .function import Function
from .module import Module
from .sourceloc import UNKNOWN_LOC


def print_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    header = f"define {fn.ret_type} @{fn.name}({params})"
    if fn.source_file and fn.source_file != "<built>":
        header += f' !file "{fn.source_file}"'
    if fn.is_declaration():
        return header.replace("define", "declare", 1)
    lines: List[str] = [header + " {"]
    for block in fn.blocks:
        lines.append(f"{block.label}:")
        for inst in block.instructions:
            lines.append(f"  {inst.format_with_loc()}")
    lines.append("}")
    return "\n".join(lines)


def print_module(mod: Module) -> str:
    """Serialize a whole module (structs, model flag, functions)."""
    parts: List[str] = [f'module "{mod.name}" model {mod.persistency_model}', ""]
    for st in mod.types.structs():
        parts.append(st.definition())
    if mod.types.structs():
        parts.append("")
    for fn in mod.functions():
        parts.append(print_function(fn))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
