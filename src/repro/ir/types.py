"""Type system for the NVM IR.

The IR is a small, LLVM-flavoured typed language. Types are immutable and
interned where cheap to do so. Struct types are *named* and registered on
the module so that the field-sensitive DSA can reason about field offsets
(the paper's DSG tracks points-to information per field, §4.2).

Sizes follow a simple, deterministic layout model: ``i8``/``i16``/``i32``/
``i64`` are 1/2/4/8 bytes, pointers are 8 bytes, floats are 8 bytes,
structs are laid out field-after-field with natural alignment, and arrays
are ``count * elem_size``. Cachelines in the NVM substrate are 64 bytes,
so byte-accurate layout is what makes flush-range reasoning meaningful.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import IRError


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


class Type:
    """Base class of all IR types."""

    def size(self) -> int:
        """Byte size of a value of this type."""
        raise NotImplementedError

    def align(self) -> int:
        """Natural alignment in bytes."""
        return max(1, min(self.size(), 8))

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_aggregate(self) -> bool:
        return isinstance(self, (StructType, ArrayType))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Type) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


class VoidType(Type):
    """The type of instructions producing no value."""

    def size(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """Fixed-width integer: i1, i8, i16, i32, i64."""

    VALID_BITS = (1, 8, 16, 32, 64)

    def __init__(self, bits: int):
        if bits not in self.VALID_BITS:
            raise IRError(f"unsupported integer width: i{bits}")
        self.bits = bits

    def size(self) -> int:
        return max(1, self.bits // 8)

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """64-bit floating point (``f64``)."""

    def size(self) -> int:
        return 8

    def __str__(self) -> str:
        return "f64"


class PointerType(Type):
    """A pointer, optionally typed with its pointee.

    ``pointee`` may be ``None`` for opaque pointers (``ptr``); analyses fall
    back to the DSG for typing in that case.
    """

    def __init__(self, pointee: Optional[Type] = None):
        self.pointee = pointee

    def size(self) -> int:
        return 8

    def __str__(self) -> str:
        if self.pointee is None:
            return "ptr"
        return f"{self.pointee}*"


class StructType(Type):
    """A named struct with ordered, named fields.

    Field offsets are computed eagerly with natural alignment so that the
    checker can compare flushed byte ranges against modified byte ranges.
    """

    def __init__(self, name: str, fields: Sequence[Tuple[str, Type]]):
        if not name:
            raise IRError("struct types must be named")
        self.name = name
        self.fields: List[Tuple[str, Type]] = list(fields)
        self._offsets: List[int] = []
        self._size = 0
        self._layout()

    def _layout(self) -> None:
        offset = 0
        max_align = 1
        self._offsets = []
        for _fname, ftype in self.fields:
            a = ftype.align()
            max_align = max(max_align, a)
            offset = _align_up(offset, a)
            self._offsets.append(offset)
            offset += ftype.size()
        self._size = _align_up(offset, max_align) if self.fields else 0

    def size(self) -> int:
        return self._size

    def align(self) -> int:
        return max([f.align() for _, f in self.fields], default=1)

    def define_fields(self, fields: Sequence[Tuple[str, "Type"]]) -> None:
        """Late field definition, enabling self-referential structs: the
        parser registers the (empty) named struct first, then fills in the
        fields — pointer fields to the struct itself never need its size."""
        if self.fields:
            raise IRError(f"struct %{self.name} already has fields")
        self.fields = list(fields)
        self._layout()

    def field_index(self, name: str) -> int:
        for i, (fname, _) in enumerate(self.fields):
            if fname == name:
                return i
        raise IRError(f"struct %{self.name} has no field named {name!r}")

    def field_offset(self, index: int) -> int:
        try:
            return self._offsets[index]
        except IndexError:
            raise IRError(
                f"struct %{self.name} has {len(self.fields)} fields, "
                f"index {index} out of range"
            ) from None

    def field_type(self, index: int) -> Type:
        try:
            return self.fields[index][1]
        except IndexError:
            raise IRError(
                f"struct %{self.name}: field index {index} out of range"
            ) from None

    def field_name(self, index: int) -> str:
        return self.fields[index][0]

    def field_range(self, index: int) -> Tuple[int, int]:
        """Byte range ``[start, end)`` occupied by field ``index``."""
        start = self.field_offset(index)
        return start, start + self.field_type(index).size()

    def __str__(self) -> str:
        return f"%{self.name}"

    def definition(self) -> str:
        """Full textual definition, as accepted by the parser."""
        body = ", ".join(f"{t} {n}" for n, t in self.fields)
        return f"struct %{self.name} {{ {body} }}"


class ArrayType(Type):
    """Fixed-length array ``[count x elem]``."""

    def __init__(self, elem: Type, count: int):
        if count < 0:
            raise IRError(f"array length must be non-negative, got {count}")
        self.elem = elem
        self.count = count

    def size(self) -> int:
        return self.elem.size() * self.count

    def align(self) -> int:
        return self.elem.align()

    def __str__(self) -> str:
        return f"[{self.count} x {self.elem}]"


class FunctionType(Type):
    """Type of a function: return type plus parameter types."""

    def __init__(self, ret: Type, params: Sequence[Type], vararg: bool = False):
        self.ret = ret
        self.params: List[Type] = list(params)
        self.vararg = vararg

    def size(self) -> int:
        return 8  # function pointers

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.vararg:
            parts.append("...")
        return f"{self.ret}({', '.join(parts)})"


# Interned singletons for the common cases.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F64 = FloatType()
PTR = PointerType()


def int_type(bits: int) -> IntType:
    """Return the interned integer type for ``bits`` when available."""
    return {1: I1, 8: I8, 16: I16, 32: I32, 64: I64}.get(bits) or IntType(bits)


def pointer_to(pointee: Optional[Type]) -> PointerType:
    """Convenience constructor mirroring LLVM's ``T*``."""
    return PointerType(pointee)


class TypeContext:
    """Per-module registry of named struct types."""

    def __init__(self) -> None:
        self._structs: Dict[str, StructType] = {}

    def define_struct(self, name: str, fields: Sequence[Tuple[str, Type]]) -> StructType:
        if name in self._structs:
            raise IRError(f"struct %{name} already defined")
        st = StructType(name, fields)
        self._structs[name] = st
        return st

    def struct(self, name: str) -> StructType:
        try:
            return self._structs[name]
        except KeyError:
            raise IRError(f"unknown struct type %{name}") from None

    def has_struct(self, name: str) -> bool:
        return name in self._structs

    def structs(self) -> List[StructType]:
        return list(self._structs.values())
