"""Modules: the compilation unit the checker operates on.

A module bundles named struct types, function definitions/declarations, the
persist-annotation registry, and the *intended persistency model* — the
paper's single compile-time flag (``-strict``, ``-epoch``, ``-strand``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import IRError
from . import types as ty
from .annotations import AnnotationRegistry
from .function import Function

#: Valid values for Module.persistency_model (mirrors the compiler flags).
PERSISTENCY_FLAGS = ("strict", "epoch", "strand")


class Module:
    """A translation unit of NVM IR."""

    def __init__(self, name: str, persistency_model: str = "strict"):
        if persistency_model not in PERSISTENCY_FLAGS:
            raise IRError(
                f"unknown persistency model flag {persistency_model!r}; "
                f"expected one of {PERSISTENCY_FLAGS}"
            )
        self.name = name
        self.persistency_model = persistency_model
        self.types = ty.TypeContext()
        self.annotations = AnnotationRegistry()
        self._functions: Dict[str, Function] = {}

    # -- types -------------------------------------------------------------
    def define_struct(
        self, name: str, fields: Sequence[Tuple[str, ty.Type]]
    ) -> ty.StructType:
        return self.types.define_struct(name, fields)

    def struct(self, name: str) -> ty.StructType:
        return self.types.struct(name)

    # -- functions -----------------------------------------------------------
    def add_function(self, function: Function) -> Function:
        if function.name in self._functions:
            raise IRError(f"function @{function.name} already defined")
        function.parent = self
        self._functions[function.name] = function
        return function

    def define_function(
        self,
        name: str,
        ret_type: ty.Type,
        params: Sequence[Tuple[str, ty.Type]] = (),
        source_file: str = "",
    ) -> Function:
        return self.add_function(Function(name, ret_type, params, source_file))

    def function(self, name: str) -> Function:
        try:
            return self._functions[name]
        except KeyError:
            raise IRError(f"no function @{name} in module {self.name!r}") from None

    def get_function(self, name: str) -> Optional[Function]:
        return self._functions.get(name)

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def functions(self) -> List[Function]:
        return list(self._functions.values())

    def defined_functions(self) -> List[Function]:
        return [f for f in self._functions.values() if not f.is_declaration()]

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __repr__(self) -> str:
        return (
            f"<Module {self.name!r} model={self.persistency_model} "
            f"functions={len(self._functions)}>"
        )
