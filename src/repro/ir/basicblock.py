"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import IRError
from .instructions import Instruction


class BasicBlock:
    """A labelled sequence of instructions inside a function.

    Blocks do not enforce the single-terminator invariant on append (the
    builder would be unusable otherwise); the verifier checks it after
    construction.
    """

    def __init__(self, label: str):
        if not label:
            raise IRError("basic blocks must be labelled")
        self.label = label
        self.instructions: List[Instruction] = []
        self.parent = None  # set by Function.add_block

    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def is_terminated(self) -> bool:
        return self.terminator() is not None

    def successors_labels(self) -> List[str]:
        term = self.terminator()
        return term.successors_labels() if term else []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.label}: {len(self.instructions)} insts>"
