"""Values of the NVM IR: constants, arguments, and instruction results.

Every :class:`Value` has a type; named values print as ``%name``. Uses are
tracked coarsely (the verifier and DSA only need def/use reachability, not
full use-lists with replacement).
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import IRError
from . import types as ty


class Value:
    """Base class for everything that can appear as an operand."""

    def __init__(self, type_: ty.Type, name: str = ""):
        self.type = type_
        self.name = name

    def ref(self) -> str:
        """Textual reference used when this value appears as an operand."""
        if not self.name:
            raise IRError(f"unnamed value of type {self.type} referenced")
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref() if self.name else '?'}: {self.type}>"


class Constant(Value):
    """An integer, float, null-pointer, or undef constant."""

    def __init__(self, type_: ty.Type, value: Union[int, float, None, str]):
        super().__init__(type_, "")
        if isinstance(type_, ty.IntType) and isinstance(value, int):
            # Wrap to the representable range (two's complement).
            bits = type_.bits
            mask = (1 << bits) - 1
            value &= mask
            if value >= 1 << (bits - 1) and bits > 1:
                value -= 1 << bits
        self.value = value

    def ref(self) -> str:
        if self.value is None:
            return "null"
        if self.value == "undef":
            return "undef"
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((str(self.type), self.value))


def const_int(value: int, bits: int = 64) -> Constant:
    """Build an integer constant (default ``i64``)."""
    return Constant(ty.int_type(bits), value)


def const_bool(value: bool) -> Constant:
    return Constant(ty.I1, 1 if value else 0)


def const_float(value: float) -> Constant:
    return Constant(ty.F64, float(value))


def null_ptr(pointee: Optional[ty.Type] = None) -> Constant:
    return Constant(ty.pointer_to(pointee), None)


def undef(type_: ty.Type) -> Constant:
    return Constant(type_, "undef")


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: ty.Type, name: str, index: int):
        super().__init__(type_, name)
        self.index = index


class GlobalRef(Value):
    """A reference to a function or global by name (prints ``@name``)."""

    def __init__(self, type_: ty.Type, name: str):
        super().__init__(type_, name)

    def ref(self) -> str:
        return f"@{self.name}"
