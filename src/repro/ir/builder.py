"""Fluent construction API for NVM IR.

Frameworks, the bug corpus, and the applications all build their IR through
:class:`IRBuilder`. The builder tracks an insertion point (a basic block)
and a current source location, auto-names temporaries, and accepts Python
ints where integer constants are expected.

Typical use::

    mod = Module("demo", persistency_model="strict")
    node = mod.define_struct("node", [("next", ty.PTR), ("value", ty.I64)])
    fn = mod.define_function("set_value", ty.VOID,
                             [("n", ty.pointer_to(node)), ("v", ty.I64)])
    b = IRBuilder(fn, source_file="demo.c")
    b.at(10)
    vp = b.getfield(fn.arg("n"), "value")
    b.store(fn.arg("v"), vp)
    b.flush(fn.arg("n"), node.size(), line=11)
    b.fence(line=12)
    b.ret()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Sequence, Union

from ..errors import IRError
from . import instructions as ins
from . import types as ty
from .basicblock import BasicBlock
from .function import Function
from .sourceloc import SourceLoc
from .values import Constant, Value, const_int

IntOrValue = Union[int, Value]


class IRBuilder:
    """Builds instructions into a function, one block at a time."""

    def __init__(self, function: Function, source_file: str = ""):
        self.function = function
        self.source_file = source_file or function.source_file or "<built>"
        if not function.source_file:
            function.source_file = self.source_file
        self._block: Optional[BasicBlock] = None
        self._tmp = 0
        self._line = 0
        if not function.blocks:
            self._block = function.add_block("entry")
        else:
            self._block = function.blocks[-1]

    # -- positioning -------------------------------------------------------
    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise IRError("builder has no insertion block")
        return self._block

    def new_block(self, label: str) -> BasicBlock:
        """Create a block (without moving the insertion point)."""
        return self.function.add_block(label)

    def position_at(self, block: BasicBlock) -> "IRBuilder":
        self._block = block
        return self

    def at(self, line: int, file: Optional[str] = None) -> "IRBuilder":
        """Set the source line attached to subsequently built instructions."""
        self._line = line
        if file is not None:
            self.source_file = file
        return self

    def _loc(self, line: Optional[int]) -> Optional[SourceLoc]:
        n = line if line is not None else self._line
        if n:
            return SourceLoc(self.source_file, n)
        return None

    def _name(self, hint: str = "t") -> str:
        self._tmp += 1
        return f"{hint}{self._tmp}"

    def _value(self, v: IntOrValue, bits: int = 64) -> Value:
        if isinstance(v, bool):
            return const_int(1 if v else 0, 1)
        if isinstance(v, int):
            return const_int(v, bits)
        return v

    def _emit(self, inst: ins.Instruction) -> ins.Instruction:
        self.block.append(inst)
        return inst

    # -- constants -----------------------------------------------------------
    def const(self, value: int, bits: int = 64) -> Constant:
        return const_int(value, bits)

    # -- allocation ----------------------------------------------------------
    def alloca(self, alloc_type: ty.Type, name: str = "", line: Optional[int] = None):
        return self._emit(
            ins.Alloca(alloc_type, name or self._name("a"), self._loc(line))
        )

    def malloc(self, alloc_type: ty.Type, count: IntOrValue = 1,
               name: str = "", line: Optional[int] = None):
        return self._emit(
            ins.Malloc(alloc_type, self._value(count), name or self._name("m"),
                       self._loc(line))
        )

    def palloc(self, alloc_type: ty.Type, count: IntOrValue = 1,
               name: str = "", line: Optional[int] = None):
        return self._emit(
            ins.PAlloc(alloc_type, self._value(count), name or self._name("p"),
                       self._loc(line))
        )

    def free(self, ptr: Value, line: Optional[int] = None):
        return self._emit(ins.Free(ptr, self._loc(line)))

    # -- memory access ---------------------------------------------------------
    def load(self, ptr: Value, name: str = "", line: Optional[int] = None):
        pointee = ptr.type.pointee if isinstance(ptr.type, ty.PointerType) else None
        if pointee is None:
            raise IRError("load requires a typed pointer; cast it first")
        return self._emit(
            ins.Load(pointee, ptr, name or self._name("v"), self._loc(line))
        )

    def store(self, value: IntOrValue, ptr: Value, line: Optional[int] = None):
        if isinstance(value, int) and isinstance(ptr.type, ty.PointerType) \
                and isinstance(ptr.type.pointee, ty.IntType):
            value = const_int(value, ptr.type.pointee.bits)
        return self._emit(ins.Store(self._value(value), ptr, self._loc(line)))

    def getfield(self, ptr: Value, field: Union[int, str], name: str = "",
                 line: Optional[int] = None):
        base = ptr.type
        if not isinstance(base, ty.PointerType) or not isinstance(base.pointee, ty.StructType):
            raise IRError(f"getfield needs pointer-to-struct, got {base}")
        index = base.pointee.field_index(field) if isinstance(field, str) else field
        return self._emit(
            ins.GetField(ptr, index, name or self._name("f"), self._loc(line))
        )

    def getelem(self, ptr: Value, index: IntOrValue, name: str = "",
                line: Optional[int] = None):
        return self._emit(
            ins.GetElem(ptr, self._value(index), name or self._name("e"),
                        self._loc(line))
        )

    def memcpy(self, dst: Value, src: Value, size: IntOrValue,
               line: Optional[int] = None):
        return self._emit(
            ins.Memcpy(dst, src, self._value(size), self._loc(line))
        )

    def memset(self, dst: Value, byte: IntOrValue, size: IntOrValue,
               line: Optional[int] = None):
        return self._emit(
            ins.Memset(dst, self._value(byte, 8), self._value(size), self._loc(line))
        )

    # -- persistence -----------------------------------------------------------
    def flush(self, ptr: Value, size: IntOrValue, line: Optional[int] = None):
        return self._emit(ins.Flush(ptr, self._value(size), self._loc(line)))

    def flush_obj(self, ptr: Value, line: Optional[int] = None):
        """Flush the whole pointee object (its static size)."""
        if not isinstance(ptr.type, ty.PointerType) or ptr.type.pointee is None:
            raise IRError("flush_obj requires a typed pointer")
        return self.flush(ptr, ptr.type.pointee.size(), line=line)

    def fence(self, line: Optional[int] = None):
        return self._emit(ins.Fence(self._loc(line)))

    def persist(self, ptr: Value, size: IntOrValue, line: Optional[int] = None):
        """flush + fence, the common ``pmemobj_persist`` shape."""
        self.flush(ptr, size, line=line)
        return self.fence(line=line)

    def txbegin(self, kind: str = ins.REGION_TX, label: str = "",
                line: Optional[int] = None):
        return self._emit(ins.TxBegin(kind, label, self._loc(line)))

    def txend(self, kind: str = ins.REGION_TX, line: Optional[int] = None):
        return self._emit(ins.TxEnd(kind, self._loc(line)))

    def txadd(self, ptr: Value, size: IntOrValue, line: Optional[int] = None):
        return self._emit(ins.TxAdd(ptr, self._value(size), self._loc(line)))

    @contextmanager
    def region(self, kind: str = ins.REGION_TX, label: str = "",
               line: Optional[int] = None):
        """Emit a balanced ``txbegin``/``txend`` pair around the with-body.

        The end marker reuses the builder's *current* insertion point, so
        bodies that move it (loops, branches) close the region wherever
        they left off — keeping the verifier's balance check satisfied as
        long as control flow reconverges.
        """
        self.txbegin(kind, label, line=line)
        yield self
        self.txend(kind, line=line)

    # -- calls / threads -------------------------------------------------------
    def call(self, callee: Union[str, Function], args: Sequence[Value] = (),
             ret_type: Optional[ty.Type] = None, name: str = "",
             line: Optional[int] = None):
        if isinstance(callee, Function):
            ret_type = callee.ret_type
            callee = callee.name
        if ret_type is None:
            parent = self.function.parent
            target = parent.get_function(callee) if parent is not None else None
            ret_type = target.ret_type if target is not None else ty.VOID
        result_name = ""
        if not isinstance(ret_type, ty.VoidType):
            result_name = name or self._name("r")
        return self._emit(
            ins.Call(ret_type, callee, [self._value(a) for a in args],
                     result_name, self._loc(line))
        )

    def spawn(self, callee: Union[str, Function], args: Sequence[Value] = (),
              name: str = "", line: Optional[int] = None):
        if isinstance(callee, Function):
            callee = callee.name
        return self._emit(
            ins.Spawn(callee, [self._value(a) for a in args],
                      name or self._name("th"), self._loc(line))
        )

    def join(self, thread: Value, line: Optional[int] = None):
        return self._emit(ins.Join(thread, self._loc(line)))

    # -- control flow ------------------------------------------------------------
    def br(self, cond: Value, then_block: Union[str, BasicBlock],
           else_block: Union[str, BasicBlock], line: Optional[int] = None):
        t = then_block.label if isinstance(then_block, BasicBlock) else then_block
        e = else_block.label if isinstance(else_block, BasicBlock) else else_block
        return self._emit(ins.Br(cond, t, e, self._loc(line)))

    def jmp(self, target: Union[str, BasicBlock], line: Optional[int] = None):
        t = target.label if isinstance(target, BasicBlock) else target
        return self._emit(ins.Jmp(t, self._loc(line)))

    def ret(self, value: Optional[IntOrValue] = None, line: Optional[int] = None):
        v = None if value is None else self._value(value)
        return self._emit(ins.Ret(v, self._loc(line)))

    # -- arithmetic ---------------------------------------------------------------
    def binop(self, op: str, a: IntOrValue, b: IntOrValue, name: str = "",
              line: Optional[int] = None):
        av = self._value(a)
        bv = self._value(b)
        if isinstance(av, Constant) and not isinstance(bv, Constant):
            av = Constant(bv.type, av.value) if isinstance(bv.type, ty.IntType) else av
        if isinstance(bv, Constant) and not isinstance(av, Constant):
            bv = Constant(av.type, bv.value) if isinstance(av.type, ty.IntType) else bv
        return self._emit(
            ins.BinOp(op, av, bv, name or self._name("x"), self._loc(line))
        )

    def add(self, a, b, name="", line=None):
        return self.binop("add", a, b, name, line)

    def sub(self, a, b, name="", line=None):
        return self.binop("sub", a, b, name, line)

    def mul(self, a, b, name="", line=None):
        return self.binop("mul", a, b, name, line)

    def icmp(self, pred: str, a: IntOrValue, b: IntOrValue, name: str = "",
             line: Optional[int] = None):
        av = self._value(a)
        bv = self._value(b)
        if isinstance(av, Constant) and isinstance(bv.type, ty.IntType):
            av = Constant(bv.type, av.value)
        if isinstance(bv, Constant) and isinstance(av.type, ty.IntType):
            bv = Constant(av.type, bv.value)
        return self._emit(
            ins.ICmp(pred, av, bv, name or self._name("c"), self._loc(line))
        )

    def cast(self, value: Value, to_type: ty.Type, name: str = "",
             line: Optional[int] = None):
        return self._emit(
            ins.Cast(value, to_type, name or self._name("k"), self._loc(line))
        )
