"""Parser for the textual NVM IR format.

Grammar sketch (one construct per line; ``;`` starts a comment)::

    module "name" model strict|epoch|strand

    struct %node { i64 value, %node* next }

    define void @fn(i64 %x, %node* %n) !file "fn.c" {
    entry:
      %p = alloca i64
      store i64 %x, %p            !loc "fn.c":3
      %v = load i64, %p
      %f = getfield %n, 1
      %e = getelem %f, %v
      flush %n, 16
      fence
      txbegin tx "outer"
      txadd %n, 16
      txend tx
      %r = call i64 @callee(%v)
      %t = spawn @worker(%v)
      join %t
      %c = icmp slt i64 %v, 10
      br %c, label %then, label %else
      jmp label %exit
      ret void
    }

Every construct the printer emits parses back; ``parse → print → parse``
is the round-trip property the test suite checks with hypothesis.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from . import instructions as ins
from . import types as ty
from .function import Function
from .module import Module
from .sourceloc import SourceLoc
from .values import Constant, Value, const_int, null_ptr, undef

_TOKEN_RE = re.compile(
    r"""
    \s*(
        "(?:[^"\\]|\\.)*"        # string literal
      | ![a-zA-Z_]+              # metadata tag (!loc, !file)
      | %[a-zA-Z_][\w.]*         # local name / struct name
      | @[a-zA-Z_][\w.]*         # global name
      | \[|\]|\{|\}|\(|\)|,|\*|=|:  # punctuation
      | -?\d+                    # integer
      | \.\.\.                   # vararg ellipsis
      | [a-zA-Z_][\w.]*          # keyword / opcode / type
    )
    """,
    re.VERBOSE,
)


def _tokenize(line: str, lineno: int) -> List[str]:
    code = line.split(";", 1)[0].rstrip()
    tokens: List[str] = []
    pos = 0
    while pos < len(code):
        m = _TOKEN_RE.match(code, pos)
        if not m:
            if code[pos:].strip() == "":
                break
            raise ParseError(f"unexpected character {code[pos]!r}", lineno, pos + 1)
        tokens.append(m.group(1))
        pos = m.end()
    return tokens


class _Cursor:
    """Token stream over one source line."""

    def __init__(self, tokens: List[str], lineno: int):
        self.tokens = tokens
        self.lineno = lineno
        self.i = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of line", self.lineno)
        self.i += 1
        return tok

    def expect(self, token: str) -> str:
        tok = self.next()
        if tok != token:
            raise ParseError(f"expected {token!r}, got {tok!r}", self.lineno)
        return tok

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.i += 1
            return True
        return False

    def done(self) -> bool:
        return self.i >= len(self.tokens)


def _unquote(tok: str) -> str:
    return tok[1:-1].replace('\\"', '"').replace("\\\\", "\\")


class Parser:
    """Parses a full module from text."""

    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.module: Optional[Module] = None

    # -- types -----------------------------------------------------------
    def parse_type(self, cur: _Cursor) -> ty.Type:
        tok = cur.next()
        if tok == "void":
            base: ty.Type = ty.VOID
        elif tok == "f64":
            base = ty.F64
        elif tok == "ptr":
            base = ty.PTR
        elif re.fullmatch(r"i\d+", tok):
            base = ty.int_type(int(tok[1:]))
        elif tok.startswith("%"):
            assert self.module is not None
            base = self.module.struct(tok[1:])
        elif tok == "[":
            count = int(cur.next())
            cur.expect("x")
            elem = self.parse_type(cur)
            cur.expect("]")
            base = ty.ArrayType(elem, count)
        else:
            raise ParseError(f"expected a type, got {tok!r}", cur.lineno)
        while cur.accept("*"):
            base = ty.pointer_to(base)
        return base

    # -- values ------------------------------------------------------------
    def parse_value(self, cur: _Cursor, locals_: Dict[str, Value],
                    expected: Optional[ty.Type] = None) -> Value:
        tok = cur.next()
        if tok.startswith("%"):
            name = tok[1:]
            try:
                return locals_[name]
            except KeyError:
                raise ParseError(f"use of undefined value %{name}", cur.lineno) from None
        if tok == "null":
            pointee = expected.pointee if isinstance(expected, ty.PointerType) else None
            return null_ptr(pointee)
        if tok == "undef":
            return undef(expected or ty.I64)
        if re.fullmatch(r"-?\d+", tok):
            if isinstance(expected, ty.IntType):
                return Constant(expected, int(tok))
            return const_int(int(tok))
        raise ParseError(f"expected a value, got {tok!r}", cur.lineno)

    # -- metadata suffixes -----------------------------------------------------
    def parse_loc(self, cur: _Cursor) -> Optional[SourceLoc]:
        if cur.accept("!loc"):
            file_tok = cur.next()
            if not file_tok.startswith('"'):
                raise ParseError("!loc expects a quoted filename", cur.lineno)
            cur.expect(":")
            line = int(cur.next())
            return SourceLoc(_unquote(file_tok), line)
        return None

    # -- top level ---------------------------------------------------------------
    def parse(self) -> Module:
        i = 0
        n = len(self.lines)
        while i < n:
            lineno = i + 1
            tokens = _tokenize(self.lines[i], lineno)
            if not tokens:
                i += 1
                continue
            head = tokens[0]
            if head == "module":
                self._parse_module_header(_Cursor(tokens, lineno))
                i += 1
            elif head == "struct":
                self._require_module(lineno)
                self._parse_struct(_Cursor(tokens, lineno))
                i += 1
            elif head in ("define", "declare"):
                self._require_module(lineno)
                i = self._parse_function(i)
            else:
                raise ParseError(f"unexpected top-level token {head!r}", lineno)
        if self.module is None:
            raise ParseError("input contains no 'module' header")
        return self.module

    def _require_module(self, lineno: int) -> None:
        if self.module is None:
            raise ParseError("'module' header must come first", lineno)

    def _parse_module_header(self, cur: _Cursor) -> None:
        if self.module is not None:
            raise ParseError("duplicate module header", cur.lineno)
        cur.expect("module")
        name_tok = cur.next()
        if not name_tok.startswith('"'):
            raise ParseError("module name must be quoted", cur.lineno)
        cur.expect("model")
        model = cur.next()
        self.module = Module(_unquote(name_tok), persistency_model=model)

    def _parse_struct(self, cur: _Cursor) -> None:
        assert self.module is not None
        cur.expect("struct")
        name_tok = cur.next()
        if not name_tok.startswith("%"):
            raise ParseError("struct name must be %-prefixed", cur.lineno)
        # Register the name before parsing the fields so the struct can
        # reference itself (linked-list nodes etc.).
        struct = self.module.define_struct(name_tok[1:], [])
        cur.expect("{")
        fields: List[Tuple[str, ty.Type]] = []
        if not cur.accept("}"):
            while True:
                ftype = self.parse_type(cur)
                fname = cur.next()
                fields.append((fname, ftype))
                if cur.accept("}"):
                    break
                cur.expect(",")
        if fields:
            struct.define_fields(fields)

    def _parse_function(self, start: int) -> int:
        assert self.module is not None
        lineno = start + 1
        cur = _Cursor(_tokenize(self.lines[start], lineno), lineno)
        kind = cur.next()  # define | declare
        ret_type = self.parse_type(cur)
        name_tok = cur.next()
        if not name_tok.startswith("@"):
            raise ParseError("function name must be @-prefixed", lineno)
        cur.expect("(")
        params: List[Tuple[str, ty.Type]] = []
        if not cur.accept(")"):
            while True:
                ptype = self.parse_type(cur)
                pname = cur.next()
                if not pname.startswith("%"):
                    raise ParseError("parameter name must be %-prefixed", lineno)
                params.append((pname[1:], ptype))
                if cur.accept(")"):
                    break
                cur.expect(",")
        source_file = ""
        if cur.accept("!file"):
            file_tok = cur.next()
            source_file = _unquote(file_tok)
        fn = self.module.define_function(name_tok[1:], ret_type, params, source_file)
        if kind == "declare":
            return start + 1
        cur.expect("{")
        return self._parse_body(fn, start + 1)

    def _parse_body(self, fn: Function, start: int) -> int:
        locals_: Dict[str, Value] = {a.name: a for a in fn.args}
        block = None
        i = start
        while i < len(self.lines):
            lineno = i + 1
            tokens = _tokenize(self.lines[i], lineno)
            if not tokens:
                i += 1
                continue
            if tokens == ["}"]:
                return i + 1
            cur = _Cursor(tokens, lineno)
            # Block label?
            if (
                len(tokens) >= 2
                and tokens[1] == ":"
                and re.fullmatch(r"[a-zA-Z_][\w.]*", tokens[0])
            ):
                block = fn.add_block(tokens[0])
                i += 1
                continue
            if block is None:
                raise ParseError("instruction before any block label", lineno)
            inst = self._parse_instruction(cur, locals_)
            block.append(inst)
            if inst.has_result() and inst.name:
                locals_[inst.name] = inst
            if not cur.done():
                raise ParseError(f"trailing tokens: {cur.peek()!r}", lineno)
            i += 1
        raise ParseError(f"unterminated function @{fn.name}", start)

    # -- instructions --------------------------------------------------------
    def _parse_instruction(self, cur: _Cursor, locals_: Dict[str, Value]) -> ins.Instruction:
        result = ""
        if cur.peek() and cur.peek().startswith("%") and cur.tokens[cur.i + 1: cur.i + 2] == ["="]:
            result = cur.next()[1:]
            cur.expect("=")
        op = cur.next()
        inst = self._dispatch(op, result, cur, locals_)
        loc = self.parse_loc(cur)
        if loc is not None:
            inst.loc = loc
        return inst

    def _dispatch(self, op: str, result: str, cur: _Cursor,
                  locals_: Dict[str, Value]) -> ins.Instruction:
        lineno = cur.lineno
        val = lambda expected=None: self.parse_value(cur, locals_, expected)  # noqa: E731

        if op == "alloca":
            return ins.Alloca(self.parse_type(cur), result)
        if op in ("malloc", "palloc"):
            t = self.parse_type(cur)
            count: Value = const_int(1)
            if cur.accept(","):
                count = val(ty.I64)
            cls = ins.Malloc if op == "malloc" else ins.PAlloc
            return cls(t, count, result)
        if op == "free":
            return ins.Free(val())
        if op == "load":
            t = self.parse_type(cur)
            cur.expect(",")
            return ins.Load(t, val(), result)
        if op == "store":
            t = self.parse_type(cur)
            v = val(t)
            cur.expect(",")
            return ins.Store(v, val())
        if op == "getfield":
            p = val()
            cur.expect(",")
            return ins.GetField(p, int(cur.next()), result)
        if op == "getelem":
            p = val()
            cur.expect(",")
            return ins.GetElem(p, val(ty.I64), result)
        if op == "memcpy":
            d = val()
            cur.expect(",")
            s = val()
            cur.expect(",")
            return ins.Memcpy(d, s, val(ty.I64))
        if op == "memset":
            d = val()
            cur.expect(",")
            b = val(ty.I8)
            cur.expect(",")
            return ins.Memset(d, b, val(ty.I64))
        if op == "flush":
            p = val()
            cur.expect(",")
            return ins.Flush(p, val(ty.I64))
        if op == "fence":
            return ins.Fence()
        if op == "txbegin":
            kind = cur.next()
            label = ""
            if cur.peek() and cur.peek().startswith('"'):
                label = _unquote(cur.next())
            return ins.TxBegin(kind, label)
        if op == "txend":
            return ins.TxEnd(cur.next())
        if op == "txadd":
            p = val()
            cur.expect(",")
            return ins.TxAdd(p, val(ty.I64))
        if op == "call":
            ret = self.parse_type(cur)
            callee = cur.next()
            if not callee.startswith("@"):
                raise ParseError("call target must be @-prefixed", lineno)
            args = self._parse_args(cur, locals_)
            return ins.Call(ret, callee[1:], args, result)
        if op == "spawn":
            callee = cur.next()
            if not callee.startswith("@"):
                raise ParseError("spawn target must be @-prefixed", lineno)
            args = self._parse_args(cur, locals_)
            return ins.Spawn(callee[1:], args, result)
        if op == "join":
            return ins.Join(val(ty.I64))
        if op == "br":
            c = val(ty.I1)
            cur.expect(",")
            cur.expect("label")
            t = cur.next()[1:]
            cur.expect(",")
            cur.expect("label")
            e = cur.next()[1:]
            return ins.Br(c, t, e)
        if op == "jmp":
            cur.expect("label")
            return ins.Jmp(cur.next()[1:])
        if op == "ret":
            if cur.peek() == "void":
                cur.next()
                return ins.Ret()
            t = self.parse_type(cur)
            return ins.Ret(val(t))
        if op in ins.BINARY_OPS:
            t = self.parse_type(cur)
            a = val(t)
            cur.expect(",")
            b = val(t)
            return ins.BinOp(op, a, b, result)
        if op == "icmp":
            pred = cur.next()
            t = self.parse_type(cur)
            a = val(t)
            cur.expect(",")
            b = val(t)
            return ins.ICmp(pred, a, b, result)
        if op == "cast":
            v = val()
            cur.expect("to")
            return ins.Cast(v, self.parse_type(cur), result)
        raise ParseError(f"unknown opcode {op!r}", lineno)

    def _parse_args(self, cur: _Cursor, locals_: Dict[str, Value]) -> List[Value]:
        cur.expect("(")
        args: List[Value] = []
        if cur.accept(")"):
            return args
        while True:
            args.append(self.parse_value(cur, locals_))
            if cur.accept(")"):
                return args
            cur.expect(",")


def parse_module(text: str) -> Module:
    """Parse a textual module; raises :class:`ParseError` on bad input."""
    return Parser(text).parse()
